"""Subspace algebra for projected outlier detection.

A *subspace* is a non-empty subset of the attribute indices ``{0, ..., phi-1}``
of the full data space.  SPOT evaluates every arriving point only in the
subspaces of its Sparse Subspace Template (SST), so subspaces are the central
currency of the whole system: MOGA searches over them, the SST stores them and
the detector projects points onto them.

Subspaces are immutable and hashable so they can be used as dictionary keys in
the synapse store and deduplicated in sets.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Iterator, List, Sequence, Tuple

from .exceptions import SubspaceError


class Subspace:
    """An immutable, ordered set of attribute indices.

    Parameters
    ----------
    dimensions:
        Iterable of attribute indices (non-negative integers).  Duplicates are
        removed and the indices are stored sorted.

    Examples
    --------
    >>> s = Subspace([3, 1])
    >>> s.dimensions
    (1, 3)
    >>> len(s)
    2
    >>> Subspace([1]) <= s
    True
    """

    __slots__ = ("_dims",)

    def __init__(self, dimensions: Iterable[int]) -> None:
        dims = tuple(sorted(set(int(d) for d in dimensions)))
        if not dims:
            raise SubspaceError("a subspace must contain at least one dimension")
        if dims[0] < 0:
            raise SubspaceError(f"dimensions must be non-negative, got {dims[0]}")
        self._dims = dims

    # ------------------------------------------------------------------ #
    # Basic protocol
    # ------------------------------------------------------------------ #
    @property
    def dimensions(self) -> Tuple[int, ...]:
        """The sorted tuple of attribute indices in this subspace."""
        return self._dims

    def __len__(self) -> int:
        return len(self._dims)

    def __iter__(self) -> Iterator[int]:
        return iter(self._dims)

    def __contains__(self, dim: object) -> bool:
        return dim in self._dims

    def __hash__(self) -> int:
        return hash(self._dims)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Subspace):
            return self._dims == other._dims
        return NotImplemented

    def __le__(self, other: "Subspace") -> bool:
        """Subset test: ``self`` is contained in ``other``."""
        return set(self._dims) <= set(other._dims)

    def __lt__(self, other: "Subspace") -> bool:
        return set(self._dims) < set(other._dims)

    def __repr__(self) -> str:
        return f"Subspace({list(self._dims)!r})"

    # ------------------------------------------------------------------ #
    # Algebra
    # ------------------------------------------------------------------ #
    def union(self, other: "Subspace") -> "Subspace":
        """Return the subspace spanning the attributes of both operands."""
        return Subspace(self._dims + other._dims)

    def intersection(self, other: "Subspace") -> "Subspace":
        """Return the common attributes; raises if the intersection is empty."""
        common = set(self._dims) & set(other._dims)
        if not common:
            raise SubspaceError(
                f"{self!r} and {other!r} share no dimensions"
            )
        return Subspace(common)

    def project(self, point: Sequence[float]) -> Tuple[float, ...]:
        """Project a full-space point onto this subspace.

        Raises :class:`SubspaceError` if the point is too short.
        """
        if self._dims[-1] >= len(point):
            raise SubspaceError(
                f"point of length {len(point)} cannot be projected onto {self!r}"
            )
        return tuple(point[d] for d in self._dims)

    def validate_against(self, phi: int) -> None:
        """Check that every dimension index is below ``phi``."""
        if self._dims[-1] >= phi:
            raise SubspaceError(
                f"subspace {self!r} references dimension {self._dims[-1]} "
                f"but the data space has only {phi} dimensions"
            )

    def as_mask(self, phi: int) -> List[bool]:
        """Return a boolean inclusion mask of length ``phi``."""
        self.validate_against(phi)
        mask = [False] * phi
        for d in self._dims:
            mask[d] = True
        return mask

    @classmethod
    def from_mask(cls, mask: Sequence[bool]) -> "Subspace":
        """Build a subspace from a boolean inclusion mask."""
        return cls(i for i, included in enumerate(mask) if included)

    @classmethod
    def full_space(cls, phi: int) -> "Subspace":
        """The subspace containing every attribute of a ``phi``-dim space."""
        if phi <= 0:
            raise SubspaceError("phi must be positive")
        return cls(range(phi))


def enumerate_subspaces(phi: int, max_dimension: int) -> Iterator[Subspace]:
    """Yield every subspace of dimension 1..max_dimension over ``phi`` attributes.

    This enumerates the lower layers of the subspace lattice.  It is used to
    build the Fixed SST Subspaces (FS) component of the template and, for
    small ``phi``, as the exhaustive ground truth that MOGA is compared
    against.

    The number of subspaces yielded is ``sum_{k=1}^{max_dimension} C(phi, k)``,
    so callers must keep ``max_dimension`` small for large ``phi``.
    """
    if phi <= 0:
        raise SubspaceError("phi must be positive")
    if max_dimension <= 0:
        raise SubspaceError("max_dimension must be positive")
    top = min(max_dimension, phi)
    for k in range(1, top + 1):
        for combo in itertools.combinations(range(phi), k):
            yield Subspace(combo)


def count_subspaces(phi: int, max_dimension: int) -> int:
    """Number of subspaces :func:`enumerate_subspaces` would yield."""
    import math

    top = min(max_dimension, phi)
    return sum(math.comb(phi, k) for k in range(1, top + 1))
