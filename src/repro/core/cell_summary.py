"""Data synapses: Base Cell Summaries and Projected Cell Summaries.

These are the two compact, incrementally-maintainable structures SPOT keeps
instead of the raw stream (Definitions 1 and 2 of the paper):

* :class:`BaseCellSummary` (BCS) — for a *base cell* (a cell of the full
  ``phi``-dimensional grid): the decayed point count ``D_c`` together with the
  decayed per-dimension linear sum ``LS_c`` and squared sum ``SS_c``.
* :class:`ProjectedCellSummary` (PCS) — for a cell of a particular subspace:
  the pair ``(RD, IRSD)``, Relative Density and Inverse Relative Standard
  Deviation, both derived from a decayed accumulator restricted to the
  subspace's dimensions.

Both are *additive* (two summaries of disjoint point sets can be merged by
adding their fields) and *decayable* (ageing is a single multiplication), which
is exactly what makes one-pass maintenance over a fast stream possible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from .exceptions import ConfigurationError, DimensionMismatchError
from .time_model import TimeModel


def poisson_tail_probability(count: float, expected: float) -> float:
    """P(X <= count) for X ~ Poisson(expected), extended to fractional counts.

    This is the significance of observing ``count`` or less in a cell whose
    null model predicts ``expected``: a very small value means the cell is
    *significantly* emptier than it should be.  The continuous extension uses
    the regularised upper incomplete gamma function Q(count + 1, expected),
    which coincides with the Poisson CDF at integer counts.  For
    ``expected <= 0`` there is nothing to be emptier than, so 1.0 is returned.
    """
    if count < 0.0:
        raise ConfigurationError(f"count must be non-negative, got {count}")
    if expected <= 0.0:
        return 1.0
    try:
        from scipy.special import gammaincc
    except ImportError:  # pragma: no cover - scipy is a hard dependency
        gammaincc = None
    if gammaincc is not None:
        return float(gammaincc(count + 1.0, expected))
    # Fallback: exact Poisson CDF at floor(count) (scipy unavailable).
    k = int(math.floor(count))
    term = math.exp(-expected)
    total = term
    for i in range(1, k + 1):
        term *= expected / i
        total += term
    return min(1.0, total)


class DecayedCellAccumulator:
    """Decayed (count, linear-sum, squared-sum) triplet over a fixed set of dims.

    This is the common machinery behind both BCS (all ``phi`` dimensions) and
    the per-subspace accumulators backing PCS (only the subspace dimensions).

    Decay is applied *lazily* and in O(1) amortized work: instead of
    multiplying every stored quantity by ``decay_factor ** elapsed`` on each
    touch (an O(width) sweep — 2 * phi + 1 multiplications for a base cell of
    a wide stream), ageing folds into a single scalar ``_scale`` factor, the
    same inflated-representation trick the vectorized store and the reference
    store's marginal histograms use.  Additions divide the incoming weight by
    the scale; reads through the public ``count`` / ``linear_sum`` /
    ``squared_sum`` attributes first *flush* the scale into the raw fields so
    external code keeps seeing plain decayed values (and may keep mutating
    them in place, as the rebuild-from-BCS path does).  Bulk maintenance
    sweeps that only need the decayed mass — pruning above all — read
    :meth:`decayed_count` instead, which never flushes, so ageing every cell
    of the store costs one multiplication per cell regardless of width.
    """

    __slots__ = ("_count", "_lin", "_sq", "_scale", "last_update")

    def __init__(self, width: int) -> None:
        if width <= 0:
            raise ConfigurationError(f"accumulator width must be positive, got {width}")
        self._count: float = 0.0
        self._lin: List[float] = [0.0] * width
        self._sq: List[float] = [0.0] * width
        self._scale: float = 1.0
        self.last_update: float = 0.0

    # ------------------------------------------------------------------ #
    # Scaled representation
    # ------------------------------------------------------------------ #
    def _flush(self) -> None:
        """Fold the pending decay scale into the raw fields (scale -> 1)."""
        scale = self._scale
        if scale != 1.0:
            self._count *= scale
            lin, sq = self._lin, self._sq
            for i in range(len(lin)):
                lin[i] *= scale
                sq[i] *= scale
            self._scale = 1.0

    @property
    def count(self) -> float:
        """Decayed point mass (flushes the pending scale on access)."""
        self._flush()
        return self._count

    @count.setter
    def count(self, value: float) -> None:
        self._flush()
        self._count = value

    @property
    def linear_sum(self) -> List[float]:
        """Decayed per-dimension linear sums (mutable, flushed on access)."""
        self._flush()
        return self._lin

    @linear_sum.setter
    def linear_sum(self, values: Sequence[float]) -> None:
        self._flush()
        self._lin = list(values)

    @property
    def squared_sum(self) -> List[float]:
        """Decayed per-dimension squared sums (mutable, flushed on access)."""
        self._flush()
        return self._sq

    @squared_sum.setter
    def squared_sum(self, values: Sequence[float]) -> None:
        self._flush()
        self._sq = list(values)

    def decayed_count(self) -> float:
        """Decayed point mass without flushing (for O(1) bulk sweeps)."""
        return self._count * self._scale

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    @property
    def width(self) -> int:
        """Number of dimensions tracked by this accumulator."""
        return len(self._lin)

    def decay_to(self, now: float, model: TimeModel) -> None:
        """Age the accumulator so its contents are expressed at tick ``now``.

        O(1): only the scalar scale is touched.  The raw fields are
        renormalised when the scale underflows toward the subnormal range.
        """
        if now < self.last_update:
            raise ConfigurationError(
                f"time moved backwards: {now} < {self.last_update}"
            )
        elapsed = now - self.last_update
        if elapsed > 0.0 and self._count > 0.0:
            self._scale *= model.decay_over(elapsed)
            if self._scale < 1e-150:
                self._flush()
        self.last_update = now

    def add(self, values: Sequence[float], now: float, model: TimeModel,
            weight: float = 1.0) -> None:
        """Fold one point (restricted to this accumulator's dims) in at tick ``now``."""
        if len(values) != self.width:
            raise DimensionMismatchError(self.width, len(values))
        self.decay_to(now, model)
        w = weight / self._scale
        self._count += w
        lin, sq = self._lin, self._sq
        for i, v in enumerate(values):
            fv = float(v)
            lin[i] += w * fv
            sq[i] += w * fv * fv

    def merge(self, other: "DecayedCellAccumulator", now: float,
              model: TimeModel) -> None:
        """Additively merge ``other`` into this accumulator at tick ``now``."""
        if other.width != self.width:
            raise DimensionMismatchError(self.width, other.width)
        self.decay_to(now, model)
        self._flush()
        other_factor = model.decay_over(now - other.last_update) \
            if now > other.last_update else 1.0
        self._count += other.count * other_factor
        for i in range(self.width):
            self._lin[i] += other.linear_sum[i] * other_factor
            self._sq[i] += other.squared_sum[i] * other_factor

    # ------------------------------------------------------------------ #
    # Derived statistics
    # ------------------------------------------------------------------ #
    def mean(self, index: int) -> float:
        """Decayed mean of the tracked dimension at position ``index``."""
        if self._count <= 0.0:
            return 0.0
        self._flush()
        return self._lin[index] / self._count

    def variance(self, index: int) -> float:
        """Decayed (population) variance of the tracked dimension ``index``.

        Floating-point cancellation can drive the raw value slightly negative
        for near-constant data; it is clamped to zero.
        """
        if self._count <= 0.0:
            return 0.0
        self._flush()
        mean = self._lin[index] / self._count
        var = self._sq[index] / self._count - mean * mean
        return var if var > 0.0 else 0.0

    def std(self, index: int) -> float:
        """Decayed standard deviation of the tracked dimension ``index``."""
        return self.variance(index) ** 0.5

    def copy(self) -> "DecayedCellAccumulator":
        """Return an independent copy of this accumulator."""
        clone = DecayedCellAccumulator(self.width)
        clone._count = self._count
        clone._lin = list(self._lin)
        clone._sq = list(self._sq)
        clone._scale = self._scale
        clone.last_update = self.last_update
        return clone


class BaseCellSummary(DecayedCellAccumulator):
    """BCS(c) = (D_c, LS_c, SS_c) for a base cell of the full grid.

    A thin specialisation of :class:`DecayedCellAccumulator` whose width is the
    full dimensionality ``phi``; kept as its own type so that signatures make
    clear whether a full-space or subspace accumulator is expected.
    """


@dataclass(frozen=True)
class ProjectedCellSummary:
    """PCS(c, s) = (RD, IRSD) for a projected cell ``c`` of subspace ``s``.

    Attributes
    ----------
    rd:
        Relative Density — the decayed mass of the cell divided by the mass
        the cell is *expected* to hold under the configured null model of the
        stream (see :class:`~repro.core.synapse_store.SynapseStore` for the
        available expectations).  ``rd < 1`` means sparser than expected.
    irsd:
        Inverse Relative Standard Deviation — the standard deviation a uniform
        distribution over a single cell width would have, divided by the
        actual (decayed) standard deviation of the points in the cell,
        averaged over the subspace's dimensions and clipped to
        ``[0, irsd_cap]``.  Widely scattered cell contents give small IRSD.
    count:
        The decayed point mass of the cell (after any self-mass exclusion).
    expected:
        The expected mass the RD was measured against.  A cell can only be
        meaningfully called sparse when this expectation is itself
        substantial; the detector requires ``expected`` to exceed a support
        threshold before flagging.
    tail_probability:
        Significance of the cell's emptiness: P(X <= count) for a Poisson
        variable with mean ``expected``.  Small values mean the cell holds
        significantly less mass than the null model predicts; this is the
        quantity the detector's default (``"poisson"``) decision rule
        thresholds.
    """

    rd: float
    irsd: float
    count: float = 0.0
    expected: float = 0.0
    tail_probability: float = 1.0

    def is_significantly_sparse(self, significance: float,
                                irsd_threshold: Optional[float] = None) -> bool:
        """Poisson-tail decision: the cell is emptier than chance allows.

        ``significance`` is the maximum admissible probability of seeing a
        count this low under the null model; the optional IRSD threshold is
        applied on top, mirroring :meth:`is_sparse`.
        """
        if self.tail_probability > significance:
            return False
        if irsd_threshold is not None and self.irsd > irsd_threshold:
            return False
        return True

    def is_sparse(self, rd_threshold: float,
                  irsd_threshold: Optional[float] = None,
                  min_expected: float = 0.0) -> bool:
        """Decide whether this cell is sparse enough to flag its points.

        A cell is sparse when its Relative Density falls below
        ``rd_threshold``, its expected mass reaches ``min_expected`` (so that
        "emptier than expected" is a meaningful statement) and, if
        ``irsd_threshold`` is given, its IRSD also falls below that threshold
        (matching the paper's "PCS ... fall under certain pre-specified
        thresholds").
        """
        if self.expected < min_expected:
            return False
        if self.rd > rd_threshold:
            return False
        if irsd_threshold is not None and self.irsd > irsd_threshold:
            return False
        return True


def compute_pcs(accumulator: DecayedCellAccumulator,
                expected_mass: float,
                uniform_stds: Sequence[float],
                *,
                irsd_cap: float = 100.0,
                std_floor: float = 1e-12,
                exclude_weight: float = 0.0) -> ProjectedCellSummary:
    """Derive the (RD, IRSD) pair from a per-cell decayed accumulator.

    Parameters
    ----------
    accumulator:
        The decayed accumulator of the projected cell (restricted to the
        subspace dimensions).
    expected_mass:
        The mass the cell is expected to hold under the null model of the
        stream (uniform over the lattice, average of populated cells, or
        product of attribute marginals — chosen by the synapse store).
    uniform_stds:
        Per-dimension standard deviation of a uniform distribution over one
        cell width, in the subspace's dimension order.
    irsd_cap:
        Upper clip for IRSD; cells holding a single point (zero spread) would
        otherwise produce an infinite value.
    std_floor:
        Numerical floor added to the measured standard deviation.
    exclude_weight:
        Mass subtracted from the cell count before computing RD — the
        detector passes the just-ingested point's own weight here so a point
        never masks its own outlier-ness.
    """
    if expected_mass < 0.0:
        raise ConfigurationError(
            f"expected_mass must be non-negative, got {expected_mass}"
        )
    count = max(0.0, accumulator.count - exclude_weight)
    if expected_mass <= 0.0:
        return ProjectedCellSummary(rd=0.0, irsd=0.0, count=count, expected=0.0,
                                    tail_probability=1.0)

    rd = count / expected_mass
    tail = poisson_tail_probability(count, expected_mass)

    if accumulator.count <= 0.0:
        return ProjectedCellSummary(rd=0.0, irsd=0.0, count=0.0,
                                    expected=expected_mass,
                                    tail_probability=tail)

    ratios = []
    for i, uniform_std in enumerate(uniform_stds):
        actual = accumulator.std(i) + std_floor
        ratio = uniform_std / actual
        ratios.append(min(ratio, irsd_cap))
    irsd = sum(ratios) / len(ratios) if ratios else 0.0
    return ProjectedCellSummary(rd=rd, irsd=irsd, count=count,
                                expected=expected_mass,
                                tail_probability=tail)
