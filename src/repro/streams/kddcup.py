"""A KDD-Cup-99-style network-intrusion stream simulator.

The paper's promised "real-life streaming data sets" are network-traffic
style streams; the canonical public benchmark for stream anomaly detection of
that era is KDD Cup 1999.  The offline environment has no bundled copy of the
dataset, so this module generates a stream that reproduces the properties of
KDD-99 that matter for projected outlier detection:

* ~34 continuous features describing connections (durations, byte counts,
  rates, error fractions, host counts...);
* traffic dominated by a handful of massive classes (``normal``, ``smurf``,
  ``neptune``) whose feature values are concentrated;
* rare attack classes whose anomaly is confined to a small, class-specific
  subset of the features (e.g. probing attacks deviate only in the
  service-spread features, U2R attacks only in the shell/root-access
  features) — i.e. the attacks are *projected* outliers;
* heavy class imbalance (rare classes well below 1 % of the stream).

Every feature is scaled to [0, 1] so the same grid configuration works across
workloads.  The class → feature-subset mapping is exposed so experiments can
check whether a detector recovers the true outlying subspaces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.subspace import Subspace
from .base import DataStream, StreamPoint

#: Names of the simulated continuous features, in attribute order.
FEATURE_NAMES: Tuple[str, ...] = (
    "duration", "src_bytes", "dst_bytes", "wrong_fragment", "urgent",
    "hot", "num_failed_logins", "num_compromised", "root_shell",
    "su_attempted", "num_root", "num_file_creations", "num_shells",
    "num_access_files", "count", "srv_count", "serror_rate",
    "srv_serror_rate", "rerror_rate", "srv_rerror_rate", "same_srv_rate",
    "diff_srv_rate", "srv_diff_host_rate", "dst_host_count",
    "dst_host_srv_count", "dst_host_same_srv_rate", "dst_host_diff_srv_rate",
    "dst_host_same_src_port_rate", "dst_host_srv_diff_host_rate",
    "dst_host_serror_rate", "dst_host_srv_serror_rate",
    "dst_host_rerror_rate", "dst_host_srv_rerror_rate", "land",
)

#: Index lookup from feature name to attribute position.
FEATURE_INDEX: Dict[str, int] = {name: i for i, name in enumerate(FEATURE_NAMES)}


@dataclass(frozen=True)
class TrafficClass:
    """One traffic class of the simulator.

    ``profile`` maps feature names to (mean, std) of that feature for the
    class; unspecified features use the background profile.  ``anomalous_in``
    names the features in which the class genuinely deviates from normal
    traffic — for attack classes this induces the ground-truth outlying
    subspace.
    """

    name: str
    weight: float
    is_attack: bool
    profile: Dict[str, Tuple[float, float]]
    anomalous_in: Tuple[str, ...] = ()


def _background_profile() -> Dict[str, Tuple[float, float]]:
    """Feature profile shared by all classes unless overridden."""
    profile: Dict[str, Tuple[float, float]] = {}
    for name in FEATURE_NAMES:
        profile[name] = (0.15, 0.05)
    profile["same_srv_rate"] = (0.85, 0.08)
    profile["dst_host_same_srv_rate"] = (0.8, 0.1)
    profile["count"] = (0.3, 0.1)
    profile["srv_count"] = (0.3, 0.1)
    profile["dst_host_count"] = (0.6, 0.15)
    profile["dst_host_srv_count"] = (0.6, 0.15)
    return profile


def default_traffic_classes() -> List[TrafficClass]:
    """The default class mix: dominant benign/dos traffic plus rare attacks."""
    return [
        TrafficClass(
            name="normal", weight=0.60, is_attack=False,
            profile={},
        ),
        TrafficClass(
            name="smurf", weight=0.22, is_attack=False,
            # Smurf floods are so dominant in KDD-99 that they behave as a
            # second "normal" mode rather than a rare anomaly.
            profile={
                "src_bytes": (0.4, 0.03),
                "count": (0.85, 0.05),
                "srv_count": (0.85, 0.05),
            },
        ),
        TrafficClass(
            name="neptune", weight=0.15, is_attack=False,
            profile={
                "serror_rate": (0.8, 0.05),
                "srv_serror_rate": (0.8, 0.05),
                "dst_host_serror_rate": (0.8, 0.05),
                "same_srv_rate": (0.1, 0.05),
            },
        ),
        # The rare attack classes deviate *moderately* and only in a small,
        # class-specific feature subset: far enough from the benign profile to
        # occupy different grid cells in those features, but close enough that
        # the deviation is diluted away in the full 34-dimensional distance —
        # i.e. they are projected outliers, which is what makes the workload
        # interesting for SPOT rather than for full-space detectors.
        TrafficClass(
            name="portsweep", weight=0.012, is_attack=True,
            profile={
                "diff_srv_rate": (0.55, 0.04),
                "dst_host_diff_srv_rate": (0.55, 0.04),
                "rerror_rate": (0.5, 0.05),
            },
            anomalous_in=("diff_srv_rate", "dst_host_diff_srv_rate",
                          "rerror_rate"),
        ),
        TrafficClass(
            name="guess_passwd", weight=0.008, is_attack=True,
            profile={
                "num_failed_logins": (0.55, 0.04),
                "hot": (0.5, 0.05),
            },
            anomalous_in=("num_failed_logins", "hot"),
        ),
        TrafficClass(
            name="buffer_overflow", weight=0.005, is_attack=True,
            profile={
                "root_shell": (0.55, 0.04),
                "num_compromised": (0.5, 0.05),
                "num_root": (0.5, 0.05),
            },
            anomalous_in=("root_shell", "num_compromised", "num_root"),
        ),
        TrafficClass(
            name="ftp_write", weight=0.005, is_attack=True,
            profile={
                "num_file_creations": (0.55, 0.04),
                "num_access_files": (0.5, 0.05),
            },
            anomalous_in=("num_file_creations", "num_access_files"),
        ),
    ]


class KDDCup99Simulator(DataStream):
    """Synthetic KDD-Cup-99-like intrusion-detection stream.

    Parameters
    ----------
    n_points:
        Number of connection records to generate.
    classes:
        Traffic-class mix; defaults to :func:`default_traffic_classes`.
    seed:
        RNG seed (identical seeds give identical streams).
    attack_rate_scale:
        Multiplier applied to the weight of every attack class, letting
        experiments sweep the outlier rate without redefining the mix.
    """

    def __init__(self, n_points: int, *,
                 classes: Optional[Sequence[TrafficClass]] = None,
                 seed: int = 0,
                 attack_rate_scale: float = 1.0) -> None:
        if n_points <= 0:
            raise ConfigurationError("n_points must be positive")
        if attack_rate_scale < 0.0:
            raise ConfigurationError("attack_rate_scale must be non-negative")
        self._n_points = n_points
        self._seed = seed
        self._background = _background_profile()
        raw_classes = list(classes) if classes is not None else default_traffic_classes()
        if not raw_classes:
            raise ConfigurationError("at least one traffic class is required")
        weights = []
        for cls in raw_classes:
            weight = cls.weight * attack_rate_scale if cls.is_attack else cls.weight
            weights.append(weight)
        total = sum(weights)
        if total <= 0.0:
            raise ConfigurationError("class weights must sum to a positive value")
        self._classes = raw_classes
        self._weights = [w / total for w in weights]

    # ------------------------------------------------------------------ #
    @property
    def dimensionality(self) -> int:
        return len(FEATURE_NAMES)

    def __len__(self) -> int:
        return self._n_points

    @property
    def classes(self) -> Tuple[TrafficClass, ...]:
        """The traffic classes (with original, unnormalised weights)."""
        return tuple(self._classes)

    def attack_subspaces(self) -> Dict[str, Subspace]:
        """Ground-truth outlying subspace of every attack class."""
        mapping: Dict[str, Subspace] = {}
        for cls in self._classes:
            if cls.is_attack and cls.anomalous_in:
                mapping[cls.name] = Subspace(
                    FEATURE_INDEX[name] for name in cls.anomalous_in
                )
        return mapping

    def attack_rate(self) -> float:
        """Effective fraction of attack records in the generated stream."""
        return sum(w for cls, w in zip(self._classes, self._weights)
                   if cls.is_attack)

    # ------------------------------------------------------------------ #
    def _sample_class(self, rng: random.Random) -> TrafficClass:
        pick = rng.random()
        cumulative = 0.0
        for cls, weight in zip(self._classes, self._weights):
            cumulative += weight
            if pick <= cumulative:
                return cls
        return self._classes[-1]

    def _sample_record(self, rng: random.Random,
                       cls: TrafficClass) -> Tuple[float, ...]:
        values: List[float] = []
        for name in FEATURE_NAMES:
            mean, std = cls.profile.get(name, self._background[name])
            value = rng.gauss(mean, std)
            values.append(min(0.999, max(0.0, value)))
        return tuple(values)

    def __iter__(self) -> Iterator[StreamPoint]:
        rng = random.Random(self._seed)
        subspaces = self.attack_subspaces()
        for _ in range(self._n_points):
            cls = self._sample_class(rng)
            values = self._sample_record(rng, cls)
            yield StreamPoint(
                values=values,
                is_outlier=cls.is_attack,
                outlying_subspace=subspaces.get(cls.name),
                category=cls.name,
            )
