"""Synthetic high-dimensional streams with planted projected outliers.

The generator reproduces the data characteristic the paper builds on: in a
high-dimensional stream the *full-space* distribution looks unremarkable, but
a small fraction of points is anomalous when restricted to a low-dimensional
subspace.  Normal points are drawn from a mixture of Gaussian clusters that
fill the unit hypercube; projected outliers are normal points whose
coordinates in a designated low-dimensional subspace are moved into a region
that is empty in that projection (while every other coordinate stays
cluster-like, so the point does not stand out in the full space).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.subspace import Subspace
from .base import DataStream, StreamPoint


@dataclass(frozen=True)
class ClusterSpec:
    """One Gaussian cluster of the normal-traffic mixture."""

    center: Tuple[float, ...]
    spread: float
    weight: float


class GaussianStreamGenerator(DataStream):
    """Stream of Gaussian-mixture normal points with planted projected outliers.

    Parameters
    ----------
    dimensions:
        Dimensionality ``phi`` of the stream.
    n_points:
        Number of points the stream yields (finite stream).
    n_clusters:
        Number of Gaussian clusters forming the normal data.
    outlier_rate:
        Fraction of points turned into projected outliers.
    outlier_subspaces:
        The subspaces in which outliers are planted.  When ``None``, a set of
        ``n_outlier_subspaces`` random subspaces of dimension
        ``outlier_subspace_dim`` is drawn from the seed.
    outlier_subspace_dim:
        Dimension of the auto-generated outlier subspaces.
    n_outlier_subspaces:
        How many distinct outlying subspaces are used.
    cluster_spread:
        Standard deviation of each cluster along every attribute.
    outlier_margin:
        Minimum distance (in domain units) between an outlier's projected
        coordinates and every cluster centre's projection, guaranteeing the
        outlier lands in an empty region of the subspace.
    outlier_mode:
        How outliers are planted:

        * ``"combination"`` (default) — each outlying coordinate is borrowed
          from a *different* cluster's marginal distribution, so every 1-d
          marginal of the outlier looks perfectly normal and only the joint
          combination within the outlying subspace is anomalous.  This is the
          canonical projected-outlier construction: full-space distance-based
          detectors and single-attribute monitors both miss these points.
        * ``"margin"`` — each outlying coordinate is moved into a region that
          is empty in its own 1-d marginal (at least ``outlier_margin`` away
          from every cluster centre).  Easier to detect; useful as a sanity
          workload.
    seed:
        Seed for the generator's private RNG; identical seeds give identical
        streams.
    """

    def __init__(self,
                 dimensions: int,
                 n_points: int,
                 *,
                 n_clusters: int = 4,
                 outlier_rate: float = 0.03,
                 outlier_subspaces: Optional[Sequence[Subspace]] = None,
                 outlier_subspace_dim: int = 2,
                 n_outlier_subspaces: int = 2,
                 cluster_spread: float = 0.05,
                 outlier_margin: float = 0.25,
                 outlier_mode: str = "combination",
                 seed: int = 0) -> None:
        if dimensions < 2:
            raise ConfigurationError("dimensions must be at least 2")
        if n_points <= 0:
            raise ConfigurationError("n_points must be positive")
        if not 0.0 <= outlier_rate < 1.0:
            raise ConfigurationError("outlier_rate must lie in [0, 1)")
        if n_clusters < 1:
            raise ConfigurationError("n_clusters must be at least 1")
        if outlier_subspace_dim < 1 or outlier_subspace_dim > dimensions:
            raise ConfigurationError(
                "outlier_subspace_dim must lie in [1, dimensions]"
            )
        if outlier_mode not in ("combination", "margin"):
            raise ConfigurationError(
                f"outlier_mode must be 'combination' or 'margin', got {outlier_mode!r}"
            )

        self._outlier_mode = outlier_mode
        self._phi = dimensions
        self._n_points = n_points
        self._outlier_rate = outlier_rate
        self._cluster_spread = cluster_spread
        self._outlier_margin = outlier_margin
        self._seed = seed

        rng = random.Random(seed)
        self._clusters = self._make_clusters(rng, n_clusters)
        if outlier_subspaces is not None:
            subspaces = list(outlier_subspaces)
            for subspace in subspaces:
                subspace.validate_against(dimensions)
            if not subspaces:
                raise ConfigurationError("outlier_subspaces must not be empty")
            self._outlier_subspaces = subspaces
        else:
            self._outlier_subspaces = self._make_outlier_subspaces(
                rng, n_outlier_subspaces, outlier_subspace_dim
            )

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    def _make_clusters(self, rng: random.Random,
                       n_clusters: int) -> List[ClusterSpec]:
        clusters = []
        weights = [rng.uniform(0.5, 1.5) for _ in range(n_clusters)]
        total = sum(weights)
        for i in range(n_clusters):
            center = tuple(rng.uniform(0.2, 0.8) for _ in range(self._phi))
            clusters.append(ClusterSpec(center=center,
                                        spread=self._cluster_spread,
                                        weight=weights[i] / total))
        return clusters

    def _make_outlier_subspaces(self, rng: random.Random, count: int,
                                dim: int) -> List[Subspace]:
        subspaces: List[Subspace] = []
        attempts = 0
        while len(subspaces) < count and attempts < 100 * count:
            attempts += 1
            dims = rng.sample(range(self._phi), dim)
            candidate = Subspace(dims)
            if candidate not in subspaces:
                subspaces.append(candidate)
        if not subspaces:
            raise ConfigurationError("failed to generate outlier subspaces")
        return subspaces

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def dimensionality(self) -> int:
        return self._phi

    @property
    def outlier_subspaces(self) -> Tuple[Subspace, ...]:
        """The ground-truth subspaces in which outliers are planted."""
        return tuple(self._outlier_subspaces)

    @property
    def clusters(self) -> Tuple[ClusterSpec, ...]:
        """The Gaussian clusters generating the normal traffic."""
        return tuple(self._clusters)

    def __len__(self) -> int:
        return self._n_points

    # ------------------------------------------------------------------ #
    # Generation
    # ------------------------------------------------------------------ #
    def _sample_normal_point(self, rng: random.Random) -> Tuple[Tuple[float, ...], str]:
        pick = rng.random()
        cumulative = 0.0
        cluster = self._clusters[-1]
        cluster_id = len(self._clusters) - 1
        for i, candidate in enumerate(self._clusters):
            cumulative += candidate.weight
            if pick <= cumulative:
                cluster = candidate
                cluster_id = i
                break
        values = tuple(
            min(0.999, max(0.001, rng.gauss(mu, cluster.spread)))
            for mu in cluster.center
        )
        return values, f"cluster-{cluster_id}"

    def _combination_coordinates(self, rng: random.Random,
                                 subspace: Subspace) -> Optional[List[float]]:
        """Outlying coordinates whose 1-d marginals each look cluster-like.

        Each dimension of ``subspace`` borrows its value from some cluster's
        marginal distribution, and the joint assignment is accepted only when
        it is at least ``outlier_margin`` away from *every* cluster centre in
        at least one of the subspace's dimensions — i.e. the combination falls
        into a region of the subspace no cluster occupies.  Returns ``None``
        when no such assignment is found (e.g. a single-cluster mixture).
        """
        if len(self._clusters) < 2:
            return None
        dims = list(subspace)
        for _ in range(60):
            donors = [rng.choice(self._clusters) for _ in dims]
            candidate = [
                min(0.999, max(0.001, rng.gauss(donor.center[d], donor.spread)))
                for donor, d in zip(donors, dims)
            ]
            empty_for_all_clusters = all(
                max(abs(candidate[i] - cluster.center[d]) for i, d in enumerate(dims))
                >= self._outlier_margin
                for cluster in self._clusters
            )
            if empty_for_all_clusters:
                return candidate
        return None

    def _outlying_coordinate(self, rng: random.Random, dimension: int) -> float:
        """Sample a coordinate far from every cluster centre along ``dimension``."""
        for _ in range(200):
            candidate = rng.uniform(0.001, 0.999)
            if all(abs(candidate - cluster.center[dimension]) >= self._outlier_margin
                   for cluster in self._clusters):
                return candidate
        # Degenerate domains (many clusters, large margin): fall back to the
        # coordinate farthest from every centre.
        best, best_gap = 0.001, -1.0
        for step in range(100):
            candidate = 0.001 + step * 0.998 / 99
            gap = min(abs(candidate - cluster.center[dimension])
                      for cluster in self._clusters)
            if gap > best_gap:
                best, best_gap = candidate, gap
        return best

    def __iter__(self) -> Iterator[StreamPoint]:
        rng = random.Random(self._seed + 1)
        for _ in range(self._n_points):
            values, category = self._sample_normal_point(rng)
            if rng.random() < self._outlier_rate:
                subspace = rng.choice(self._outlier_subspaces)
                mutated = list(values)
                combination: Optional[List[float]] = None
                if self._outlier_mode == "combination":
                    combination = self._combination_coordinates(rng, subspace)
                if combination is not None:
                    for i, d in enumerate(subspace):
                        mutated[d] = combination[i]
                else:
                    for d in subspace:
                        mutated[d] = self._outlying_coordinate(rng, d)
                yield StreamPoint(values=tuple(mutated), is_outlier=True,
                                  outlying_subspace=subspace,
                                  category="projected-outlier")
            else:
                yield StreamPoint(values=values, is_outlier=False,
                                  category=category)


class UniformNoiseStream(DataStream):
    """A purely uniform stream with no structure at all.

    Used by tests and the time-model benchmark as a worst case in which every
    cell should look equally (non-)sparse.
    """

    def __init__(self, dimensions: int, n_points: int, *, seed: int = 0) -> None:
        if dimensions < 1:
            raise ConfigurationError("dimensions must be at least 1")
        if n_points <= 0:
            raise ConfigurationError("n_points must be positive")
        self._phi = dimensions
        self._n_points = n_points
        self._seed = seed

    @property
    def dimensionality(self) -> int:
        return self._phi

    def __len__(self) -> int:
        return self._n_points

    def __iter__(self) -> Iterator[StreamPoint]:
        rng = random.Random(self._seed)
        for _ in range(self._n_points):
            values = tuple(rng.random() for _ in range(self._phi))
            yield StreamPoint(values=values, is_outlier=False, category="uniform")
