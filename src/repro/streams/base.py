"""Stream abstractions shared by every workload generator.

A *stream* in this library is an iterable of :class:`StreamPoint` objects.
Generators are deterministic given their seed, can be bounded or unbounded,
and carry ground-truth labels (outlier / regular, plus the true outlying
subspace when known) so that the evaluation harness can score detectors
without any external dataset.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.exceptions import StreamExhaustedError
from ..core.subspace import Subspace


@dataclass(frozen=True)
class StreamPoint:
    """One element of a labelled data stream.

    Attributes
    ----------
    values:
        The attribute vector of the point.
    is_outlier:
        Ground-truth label; ``True`` for injected projected outliers.
    outlying_subspace:
        The subspace in which the point was made anomalous, when the
        generator knows it (synthetic workloads).  ``None`` otherwise.
    category:
        Free-form tag describing the point's generating process (cluster id,
        attack type, fault type...), useful for per-class breakdowns.
    """

    values: Tuple[float, ...]
    is_outlier: bool = False
    outlying_subspace: Optional[Subspace] = None
    category: str = "normal"

    @property
    def dimensionality(self) -> int:
        """Number of attributes of the point."""
        return len(self.values)


class DataStream(abc.ABC):
    """Base class for every stream generator in :mod:`repro.streams`."""

    @abc.abstractmethod
    def __iter__(self) -> Iterator[StreamPoint]:
        """Yield the stream's points in arrival order."""

    @property
    @abc.abstractmethod
    def dimensionality(self) -> int:
        """Number of attributes of every point the stream produces."""

    def take(self, n: int) -> List[StreamPoint]:
        """Materialise the next ``n`` points.

        Raises :class:`StreamExhaustedError` if the stream ends early, so
        experiment code never silently runs on a shorter stream than it
        configured.
        """
        points: List[StreamPoint] = []
        iterator = iter(self)
        for _ in range(n):
            try:
                points.append(next(iterator))
            except StopIteration as exc:
                raise StreamExhaustedError(
                    f"stream produced only {len(points)} of the {n} requested points"
                ) from exc
        return points

    def split(self, n_training: int,
              n_detection: int) -> Tuple[List[StreamPoint], List[StreamPoint]]:
        """Materialise a training prefix and a detection segment in one pass."""
        combined = self.take(n_training + n_detection)
        return combined[:n_training], combined[n_training:]


class ListStream(DataStream):
    """A finite stream backed by an in-memory list of points.

    Useful for tests, for replaying recorded segments, and as the output type
    of transformations such as drift injection.
    """

    def __init__(self, points: Sequence[StreamPoint]) -> None:
        self._points = list(points)
        if self._points:
            width = self._points[0].dimensionality
            for point in self._points:
                if point.dimensionality != width:
                    raise ValueError(
                        "all points of a ListStream must share one dimensionality"
                    )

    def __iter__(self) -> Iterator[StreamPoint]:
        return iter(self._points)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def dimensionality(self) -> int:
        if not self._points:
            return 0
        return self._points[0].dimensionality

    @property
    def points(self) -> List[StreamPoint]:
        """The backing list (not copied; treat as read-only)."""
        return self._points


class ConcatStream(DataStream):
    """Concatenation of several streams, played back to back.

    The workhorse of drift experiments: a stream whose generating process
    changes abruptly is simply the concatenation of two differently
    parameterised generators.
    """

    def __init__(self, streams: Sequence[DataStream]) -> None:
        if not streams:
            raise ValueError("ConcatStream needs at least one stream")
        dims = {stream.dimensionality for stream in streams}
        if len(dims) != 1:
            raise ValueError(
                f"cannot concatenate streams with different dimensionalities: {dims}"
            )
        self._streams = list(streams)

    def __iter__(self) -> Iterator[StreamPoint]:
        for stream in self._streams:
            yield from stream

    @property
    def dimensionality(self) -> int:
        return self._streams[0].dimensionality


def values_of(points: Iterable[StreamPoint]) -> List[Tuple[float, ...]]:
    """Extract the raw attribute vectors of a sequence of points."""
    return [point.values for point in points]


def labels_of(points: Iterable[StreamPoint]) -> List[bool]:
    """Extract the ground-truth outlier labels of a sequence of points."""
    return [point.is_outlier for point in points]
