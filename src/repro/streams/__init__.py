"""Stream substrate: labelled data streams, workload generators, drift tools."""

from .base import (
    ConcatStream,
    DataStream,
    ListStream,
    StreamPoint,
    labels_of,
    values_of,
)
from .drift import DriftDetector, DriftSignal, GradualDriftStream, abrupt_drift_stream
from .kddcup import (
    FEATURE_INDEX,
    FEATURE_NAMES,
    KDDCup99Simulator,
    TrafficClass,
    default_traffic_classes,
)
from .readers import CSVStream, read_csv_stream, write_csv_stream
from .sensors import FaultSpec, SensorFieldStream
from .synthetic import ClusterSpec, GaussianStreamGenerator, UniformNoiseStream
from .tagged import (
    MultiplexedStream,
    TaggedStreamPoint,
    tag_points,
    values_by_stream,
)

__all__ = [
    "ConcatStream",
    "DataStream",
    "ListStream",
    "StreamPoint",
    "labels_of",
    "values_of",
    "DriftDetector",
    "DriftSignal",
    "GradualDriftStream",
    "abrupt_drift_stream",
    "FEATURE_INDEX",
    "FEATURE_NAMES",
    "KDDCup99Simulator",
    "TrafficClass",
    "default_traffic_classes",
    "CSVStream",
    "read_csv_stream",
    "write_csv_stream",
    "FaultSpec",
    "SensorFieldStream",
    "ClusterSpec",
    "GaussianStreamGenerator",
    "UniformNoiseStream",
    "MultiplexedStream",
    "TaggedStreamPoint",
    "tag_points",
    "values_by_stream",
]
