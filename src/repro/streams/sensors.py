"""A sensor-field monitoring stream with correlated readings and rare faults.

The paper motivates SPOT with sensor-network monitoring (among other
applications).  This generator simulates a field of sensors that report
correlated physical quantities (temperature, humidity, pressure, light,
voltage...) following a shared diurnal cycle.  Faults — stuck-at readings,
calibration drift, coordinated spoofing — affect only a small subset of the
channels, so the faulty records are projected outliers: each looks normal in
the full space (most channels are healthy) but abnormal in the faulty
channels' subspace.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.subspace import Subspace
from .base import DataStream, StreamPoint


@dataclass(frozen=True)
class FaultSpec:
    """One fault type injected into the sensor stream.

    Attributes
    ----------
    name:
        Fault tag reported in :attr:`StreamPoint.category`.
    channels:
        Indices of the channels the fault corrupts (its outlying subspace).
    offset:
        Additive shift applied to the corrupted channels (domain units).
    rate:
        Per-record probability of this fault occurring.
    """

    name: str
    channels: Tuple[int, ...]
    offset: float
    rate: float


class SensorFieldStream(DataStream):
    """Correlated multi-channel sensor stream with projected faults.

    Parameters
    ----------
    n_channels:
        Number of sensor channels (the stream dimensionality).
    n_points:
        Number of records the stream yields.
    faults:
        Fault specifications; defaults to three faults touching disjoint
        channel pairs at a combined rate of about 2 %.
    cycle_length:
        Period (in records) of the shared diurnal cycle.
    noise:
        Standard deviation of the per-channel measurement noise.
    seed:
        RNG seed.
    """

    def __init__(self, n_channels: int, n_points: int, *,
                 faults: Optional[Sequence[FaultSpec]] = None,
                 cycle_length: int = 500,
                 noise: float = 0.03,
                 seed: int = 0) -> None:
        if n_channels < 4:
            raise ConfigurationError("n_channels must be at least 4")
        if n_points <= 0:
            raise ConfigurationError("n_points must be positive")
        if cycle_length <= 0:
            raise ConfigurationError("cycle_length must be positive")
        self._phi = n_channels
        self._n_points = n_points
        self._cycle = cycle_length
        self._noise = noise
        self._seed = seed
        self._faults = list(faults) if faults is not None else \
            self._default_faults(n_channels)
        for fault in self._faults:
            if not fault.channels:
                raise ConfigurationError(f"fault {fault.name} has no channels")
            if max(fault.channels) >= n_channels:
                raise ConfigurationError(
                    f"fault {fault.name} references channel {max(fault.channels)} "
                    f"but the stream has only {n_channels} channels"
                )
            if not 0.0 <= fault.rate < 1.0:
                raise ConfigurationError(
                    f"fault {fault.name} has rate {fault.rate} outside [0, 1)"
                )

        rng = random.Random(seed)
        # Each channel has a baseline level and a phase/amplitude of the
        # shared cycle, so channels are correlated but not identical.
        self._baselines = [rng.uniform(0.35, 0.65) for _ in range(n_channels)]
        self._amplitudes = [rng.uniform(0.05, 0.15) for _ in range(n_channels)]
        self._phases = [rng.uniform(0.0, 2.0 * math.pi) for _ in range(n_channels)]

    @staticmethod
    def _default_faults(n_channels: int) -> List[FaultSpec]:
        return [
            FaultSpec(name="stuck-high", channels=(0, 1), offset=0.35, rate=0.008),
            FaultSpec(name="calibration-drift", channels=(2, 3), offset=-0.3,
                      rate=0.007),
            FaultSpec(name="spoofed-pair",
                      channels=(n_channels - 2, n_channels - 1),
                      offset=0.4, rate=0.005),
        ]

    # ------------------------------------------------------------------ #
    @property
    def dimensionality(self) -> int:
        return self._phi

    def __len__(self) -> int:
        return self._n_points

    @property
    def faults(self) -> Tuple[FaultSpec, ...]:
        """The fault types injected into the stream."""
        return tuple(self._faults)

    def fault_subspaces(self) -> Dict[str, Subspace]:
        """Ground-truth outlying subspace of every fault type."""
        return {fault.name: Subspace(fault.channels) for fault in self._faults}

    # ------------------------------------------------------------------ #
    def _healthy_record(self, rng: random.Random, t: int) -> List[float]:
        cycle_position = 2.0 * math.pi * (t % self._cycle) / self._cycle
        record = []
        for c in range(self._phi):
            value = (self._baselines[c]
                     + self._amplitudes[c] * math.sin(cycle_position + self._phases[c])
                     + rng.gauss(0.0, self._noise))
            record.append(min(0.999, max(0.001, value)))
        return record

    def __iter__(self) -> Iterator[StreamPoint]:
        rng = random.Random(self._seed + 1)
        subspaces = self.fault_subspaces()
        for t in range(self._n_points):
            record = self._healthy_record(rng, t)
            active_fault: Optional[FaultSpec] = None
            for fault in self._faults:
                if rng.random() < fault.rate:
                    active_fault = fault
                    break
            if active_fault is None:
                yield StreamPoint(values=tuple(record), is_outlier=False,
                                  category="healthy")
                continue
            for channel in active_fault.channels:
                shifted = record[channel] + active_fault.offset
                record[channel] = min(0.999, max(0.001, shifted))
            yield StreamPoint(values=tuple(record), is_outlier=True,
                              outlying_subspace=subspaces[active_fault.name],
                              category=active_fault.name)
