"""Reading and writing labelled streams as CSV files.

Real deployments replay recorded traffic from disk.  The CSV layout used here
is deliberately simple: one row per point, the attribute columns first, then
an optional ``label`` column (0/1) and an optional ``category`` column.  The
same layout is produced by :func:`write_csv_stream`, so recorded synthetic
workloads can be replayed byte-identically in later runs.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Union

from ..core.exceptions import ConfigurationError
from .base import DataStream, ListStream, StreamPoint

PathLike = Union[str, Path]


class CSVStream(DataStream):
    """A stream replayed from a CSV file.

    Parameters
    ----------
    path:
        File to read.
    has_header:
        Whether the first row is a header and should be skipped.
    label_column:
        Index of the 0/1 outlier-label column, or ``None`` if the file is
        unlabelled.  Negative indices count from the end of the row.
    category_column:
        Index of an optional category column.
    feature_columns:
        Explicit indices of the attribute columns; by default every column
        that is not the label or category column is treated as a feature.
    """

    def __init__(self, path: PathLike, *, has_header: bool = True,
                 label_column: Optional[int] = None,
                 category_column: Optional[int] = None,
                 feature_columns: Optional[Sequence[int]] = None) -> None:
        self._path = Path(path)
        if not self._path.exists():
            raise ConfigurationError(f"stream file does not exist: {self._path}")
        self._has_header = has_header
        self._label_column = label_column
        self._category_column = category_column
        self._feature_columns = list(feature_columns) if feature_columns else None
        self._dimensionality = self._probe_dimensionality()

    def _resolve_columns(self, row: Sequence[str]) -> List[int]:
        if self._feature_columns is not None:
            return self._feature_columns
        excluded = set()
        for col in (self._label_column, self._category_column):
            if col is not None:
                excluded.add(col % len(row))
        return [i for i in range(len(row)) if i not in excluded]

    def _probe_dimensionality(self) -> int:
        with open(self._path, newline="") as handle:
            reader = csv.reader(handle)
            rows = iter(reader)
            if self._has_header:
                next(rows, None)
            first = next(rows, None)
            if first is None:
                raise ConfigurationError(f"stream file is empty: {self._path}")
            return len(self._resolve_columns(first))

    @property
    def dimensionality(self) -> int:
        return self._dimensionality

    def __iter__(self) -> Iterator[StreamPoint]:
        with open(self._path, newline="") as handle:
            reader = csv.reader(handle)
            rows = iter(reader)
            if self._has_header:
                next(rows, None)
            for row in rows:
                if not row:
                    continue
                columns = self._resolve_columns(row)
                try:
                    values = tuple(float(row[i]) for i in columns)
                except ValueError as exc:
                    raise ConfigurationError(
                        f"non-numeric feature value in {self._path}: {exc}"
                    ) from exc
                is_outlier = False
                if self._label_column is not None:
                    is_outlier = row[self._label_column % len(row)].strip() in (
                        "1", "1.0", "true", "True")
                category = "normal"
                if self._category_column is not None:
                    category = row[self._category_column % len(row)].strip()
                yield StreamPoint(values=values, is_outlier=is_outlier,
                                  category=category)


def write_csv_stream(points: Sequence[StreamPoint], path: PathLike, *,
                     include_header: bool = True) -> int:
    """Write a materialised stream segment to CSV; returns the row count.

    The layout matches what :class:`CSVStream` reads back with
    ``label_column=-2, category_column=-1``.
    """
    if not points:
        raise ConfigurationError("cannot write an empty stream")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    width = points[0].dimensionality
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        if include_header:
            writer.writerow(
                [f"x{i}" for i in range(width)] + ["label", "category"]
            )
        for point in points:
            if point.dimensionality != width:
                raise ConfigurationError(
                    "all points written to one file must share a dimensionality"
                )
            writer.writerow(
                list(point.values) + [1 if point.is_outlier else 0, point.category]
            )
    return len(points)


def read_csv_stream(path: PathLike) -> ListStream:
    """Read a file produced by :func:`write_csv_stream` into a ListStream."""
    stream = CSVStream(path, has_header=True, label_column=-2, category_column=-1)
    return ListStream(list(stream))
