"""Stream-id-carrying points and multiplexed multi-tenant streams.

A production deployment serves many independent streams (tenants) over one
ingestion path, so points must carry *which* stream they belong to.
:class:`TaggedStreamPoint` wraps a :class:`~repro.streams.base.StreamPoint`
with a ``stream_id``; it exposes the wrapped point's ``values`` /
``is_outlier`` / ``dimensionality`` so detector-facing code that only needs
the attribute vector (``_coerce_point`` reads ``.values``) accepts tagged and
plain points alike.

:class:`MultiplexedStream` interleaves several named base streams into one
tagged arrival sequence — deterministic given its seed, which is what lets
the evaluation harness compare a sharded service run against per-partition
reference runs point for point.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.subspace import Subspace
from .base import DataStream, StreamPoint


@dataclass(frozen=True)
class TaggedStreamPoint:
    """One element of a multiplexed stream: a point plus its stream id."""

    stream_id: str
    point: StreamPoint

    @property
    def values(self) -> Tuple[float, ...]:
        """Attribute vector of the wrapped point."""
        return self.point.values

    @property
    def is_outlier(self) -> bool:
        """Ground-truth label of the wrapped point."""
        return self.point.is_outlier

    @property
    def outlying_subspace(self) -> Optional[Subspace]:
        """True outlying subspace of the wrapped point, when known."""
        return self.point.outlying_subspace

    @property
    def category(self) -> str:
        """Generating-process tag of the wrapped point."""
        return self.point.category

    @property
    def dimensionality(self) -> int:
        """Number of attributes of the wrapped point."""
        return self.point.dimensionality


def tag_points(stream_id: str,
               points: Iterable[StreamPoint]) -> List[TaggedStreamPoint]:
    """Wrap every point of one stream with its stream id."""
    return [TaggedStreamPoint(stream_id=stream_id, point=point)
            for point in points]


def values_by_stream(points: Iterable[TaggedStreamPoint]
                     ) -> Dict[str, List[Tuple[float, ...]]]:
    """Group the attribute vectors of tagged points by stream id (in order)."""
    grouped: Dict[str, List[Tuple[float, ...]]] = {}
    for point in points:
        grouped.setdefault(point.stream_id, []).append(point.values)
    return grouped


class MultiplexedStream(DataStream):
    """Deterministic interleaving of several named streams into one.

    Parameters
    ----------
    streams:
        Mapping (or ordered pairs) of stream id to base stream.  All base
        streams must share one dimensionality.
    seed:
        Seed of the interleaving order (``mode="shuffled"`` only).
    mode:
        ``"shuffled"`` (default) draws the next point from a uniformly random
        not-yet-exhausted stream; ``"roundrobin"`` cycles through the streams
        in registration order.  Both orders are deterministic given the seed
        and the member streams.

    Iteration yields :class:`TaggedStreamPoint` (note the deviation from the
    plain-:class:`StreamPoint` base contract); ``take``/``split`` work
    unchanged because tagged points expose ``dimensionality`` and ``values``.
    """

    def __init__(self,
                 streams: "Mapping[str, DataStream] | Sequence[Tuple[str, DataStream]]",
                 *, seed: int = 0, mode: str = "shuffled") -> None:
        items = list(streams.items()) if isinstance(streams, Mapping) \
            else list(streams)
        if not items:
            raise ConfigurationError(
                "MultiplexedStream needs at least one member stream")
        if mode not in ("shuffled", "roundrobin"):
            raise ConfigurationError(
                f"mode must be 'shuffled' or 'roundrobin', got {mode!r}")
        ids = [stream_id for stream_id, _ in items]
        if len(set(ids)) != len(ids):
            raise ConfigurationError("stream ids must be unique")
        dims = {stream.dimensionality for _, stream in items}
        if len(dims) != 1:
            raise ConfigurationError(
                f"cannot multiplex streams with different dimensionalities: {dims}"
            )
        self._streams = items
        self._seed = seed
        self._mode = mode

    @property
    def stream_ids(self) -> Tuple[str, ...]:
        """Ids of the member streams, in registration order."""
        return tuple(stream_id for stream_id, _ in self._streams)

    @property
    def dimensionality(self) -> int:
        return self._streams[0][1].dimensionality

    def __iter__(self) -> Iterator[TaggedStreamPoint]:
        iterators: List[Tuple[str, Iterator[StreamPoint]]] = [
            (stream_id, iter(stream)) for stream_id, stream in self._streams
        ]
        rng = random.Random(self._seed)
        cursor = 0
        while iterators:
            if self._mode == "shuffled":
                index = rng.randrange(len(iterators))
            else:
                index = cursor % len(iterators)
            stream_id, iterator = iterators[index]
            try:
                point = next(iterator)
            except StopIteration:
                iterators.pop(index)
                continue
            cursor += 1
            yield TaggedStreamPoint(stream_id=stream_id, point=point)
