"""Concept-drift construction and detection utilities.

SPOT's adaptation mechanisms (decayed summaries, OS growth, CS self-evolution)
only matter when the stream's generating process changes.  This module
provides

* :func:`abrupt_drift_stream` / :class:`GradualDriftStream` — build drifting
  workloads out of any two base streams, and
* :class:`DriftDetector` — the simple distribution-shift monitor referenced by
  the paper's architecture ("concept drift detection"): it tracks the fraction
  of recent points that land in previously unpopulated base cells and raises a
  drift signal when that fraction exceeds a threshold, i.e. when the stream
  starts visiting regions of the space the summaries know nothing about.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Iterable, Iterator, List, Optional, Sequence

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.grid import Grid
from .base import ConcatStream, DataStream, StreamPoint


def abrupt_drift_stream(before: DataStream, after: DataStream) -> DataStream:
    """Concatenate two streams to create a single abrupt concept drift."""
    return ConcatStream([before, after])


class GradualDriftStream(DataStream):
    """Blend two streams over a transition window.

    During the transition the probability of drawing the next point from the
    ``after`` stream ramps linearly from 0 to 1, producing a gradual drift
    rather than a sharp switch.
    """

    def __init__(self, before: DataStream, after: DataStream, *,
                 n_before: int, n_transition: int, n_after: int,
                 seed: int = 0) -> None:
        if before.dimensionality != after.dimensionality:
            raise ConfigurationError(
                "both streams must share one dimensionality "
                f"({before.dimensionality} != {after.dimensionality})"
            )
        if min(n_before, n_transition, n_after) < 0:
            raise ConfigurationError("segment lengths must be non-negative")
        if n_before + n_transition + n_after <= 0:
            raise ConfigurationError("the drift stream must contain points")
        self._before = before
        self._after = after
        self._n_before = n_before
        self._n_transition = n_transition
        self._n_after = n_after
        self._seed = seed

    @property
    def dimensionality(self) -> int:
        return self._before.dimensionality

    def __len__(self) -> int:
        return self._n_before + self._n_transition + self._n_after

    def __iter__(self) -> Iterator[StreamPoint]:
        rng = random.Random(self._seed)
        before_iter = iter(self._before)
        after_iter = iter(self._after)

        def next_from(iterator: Iterator[StreamPoint],
                      fallback: Iterator[StreamPoint]) -> StreamPoint:
            try:
                return next(iterator)
            except StopIteration:
                return next(fallback)

        for _ in range(self._n_before):
            yield next_from(before_iter, after_iter)
        for i in range(self._n_transition):
            blend = (i + 1) / (self._n_transition + 1)
            if rng.random() < blend:
                yield next_from(after_iter, before_iter)
            else:
                yield next_from(before_iter, after_iter)
        for _ in range(self._n_after):
            yield next_from(after_iter, before_iter)


@dataclass
class DriftSignal:
    """Outcome of feeding one point to the drift detector."""

    drift_detected: bool
    novelty_rate: float


class DriftDetector:
    """Novel-cell-rate monitor for concept-drift detection.

    The detector keeps a sliding window of booleans recording, for each recent
    point, whether its base cell had ever been seen before.  A healthy,
    stationary stream quickly exhausts its set of populated cells, so the
    novel-cell rate decays towards zero; a concept drift makes the stream
    visit new cells and the rate jumps.

    Parameters
    ----------
    grid:
        The grid used to discretise points (normally the detector's own grid).
    window:
        Number of recent points the novelty rate is computed over.
    threshold:
        Novelty rate above which drift is signalled.
    warmup:
        Number of initial points during which no drift is ever signalled
        (every cell is novel at the very beginning).
    """

    def __init__(self, grid: Grid, *, window: int = 200,
                 threshold: float = 0.3, warmup: int = 300) -> None:
        if window <= 0:
            raise ConfigurationError("window must be positive")
        if not 0.0 < threshold <= 1.0:
            raise ConfigurationError("threshold must lie in (0, 1]")
        if warmup < 0:
            raise ConfigurationError("warmup must be non-negative")
        self._grid = grid
        self._window = window
        self._threshold = threshold
        self._warmup = warmup
        self._seen_cells: set = set()
        self._recent: Deque[bool] = deque(maxlen=window)
        self._points = 0
        self._drift_count = 0

    @property
    def drift_count(self) -> int:
        """Number of points at which drift was signalled so far."""
        return self._drift_count

    def novelty_rate(self) -> float:
        """Fraction of the recent window that landed in never-seen cells."""
        if not self._recent:
            return 0.0
        return sum(self._recent) / len(self._recent)

    def observe(self, point: Sequence[float],
                cell: Optional[tuple] = None) -> DriftSignal:
        """Feed one point; returns whether drift is currently signalled.

        ``cell`` lets batch callers hand over the point's already-quantised
        base-cell address so it is not recomputed per point.
        """
        if cell is None:
            cell = self._grid.base_cell(point)
        novel = cell not in self._seen_cells
        self._seen_cells.add(cell)
        self._recent.append(novel)
        self._points += 1
        rate = self.novelty_rate()
        drift = (self._points > self._warmup
                 and len(self._recent) == self._recent.maxlen
                 and rate >= self._threshold)
        if drift:
            self._drift_count += 1
        return DriftSignal(drift_detected=drift, novelty_rate=rate)

    def observe_cells(self, cells: Iterable[tuple]) -> None:
        """Feed a chunk of already-quantised base cells in stream order.

        Same per-point semantics as :meth:`observe` (novelty, window, drift
        counting) without building a :class:`DriftSignal` per point — the
        batch detection path discards the signals anyway.
        """
        seen = self._seen_cells
        recent = self._recent
        maxlen = recent.maxlen
        warmup = self._warmup
        threshold = self._threshold
        points = self._points
        drifts = 0
        # Running window count instead of re-summing the deque per point:
        # count / maxlen is exactly novelty_rate() whenever the window is
        # full, which is the only case the drift test reads it.
        count = sum(recent)
        for cell in cells:
            novel = cell not in seen
            if novel:
                seen.add(cell)
            if len(recent) == maxlen:
                count -= recent[0]
            recent.append(novel)
            count += novel
            points += 1
            if (points > warmup and len(recent) == maxlen
                    and count / maxlen >= threshold):
                drifts += 1
        self._points = points
        self._drift_count += drifts

    def reset(self) -> None:
        """Forget the seen-cell set and the recent window (after adaptation)."""
        self._seen_cells.clear()
        self._recent.clear()
        self._points = 0

    def state_to_dict(self, array_mode: str = "json") -> dict:
        """Snapshot for detector checkpointing (seen cells + recent window).

        ``array_mode`` other than ``"json"`` exports the seen-cell set as a
        sorted ``(n, phi)`` int64 matrix — it grows with every populated
        base cell, so the array form keeps ``.npz`` snapshot cost flat.
        Built fresh either way, so "view" and "copy" coincide.
        """
        if array_mode == "json" or not self._seen_cells:
            seen: object = sorted(list(cell) for cell in self._seen_cells)
        else:
            seen = np.asarray(sorted(self._seen_cells), dtype=np.int64)
        return {
            "window": self._window,
            "threshold": self._threshold,
            "warmup": self._warmup,
            "seen_cells": seen,
            "recent": [bool(flag) for flag in self._recent],
            "points": self._points,
            "drift_count": self._drift_count,
        }

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_to_dict` (grid is supplied at construction)."""
        self._window = int(payload["window"])
        self._threshold = float(payload["threshold"])
        self._warmup = int(payload["warmup"])
        seen = payload["seen_cells"]
        if isinstance(seen, np.ndarray):
            seen = seen.tolist()
        self._seen_cells = {tuple(int(i) for i in cell) for cell in seen}
        self._recent = deque((bool(flag) for flag in payload["recent"]),
                             maxlen=self._window)
        self._points = int(payload["points"])
        self._drift_count = int(payload["drift_count"])
