"""Lead (leader) clustering — the one-pass clustering used in learning.

The unsupervised learning stage needs a cheap way to rank the training points
by how "outlying" they are overall, so that the sparse subspaces of the most
outlying ones can seed the CS component of the SST.  The paper prescribes the
*lead clustering method under different data orders*: a single pass over the
data in which each point joins the first existing cluster whose leader is
within a distance threshold, or founds a new cluster otherwise.  Points that
repeatedly end up in tiny clusters — regardless of the order the data is
visited in — are the outlying ones.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.kernels import batch_distances


@dataclass
class Cluster:
    """One cluster of the leader-clustering pass."""

    leader: Tuple[float, ...]
    member_indices: List[int] = field(default_factory=list)
    centroid_sum: List[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.centroid_sum:
            self.centroid_sum = list(self.leader)

    @property
    def size(self) -> int:
        """Number of points assigned to the cluster."""
        return len(self.member_indices)

    @property
    def centroid(self) -> Tuple[float, ...]:
        """Running mean of the members (the leader defines the radius, not this)."""
        if not self.member_indices:
            return self.leader
        n = len(self.member_indices)
        return tuple(value / n for value in self.centroid_sum)

    def add(self, index: int, point: Sequence[float]) -> None:
        """Assign one point (by index) to this cluster."""
        if self.member_indices:
            for i, value in enumerate(point):
                self.centroid_sum[i] += float(value)
        else:
            self.centroid_sum = [float(v) for v in point]
        self.member_indices.append(index)


def euclidean_distance(a: Sequence[float], b: Sequence[float]) -> float:
    """Plain Euclidean distance between two points of equal length."""
    if len(a) != len(b):
        raise ConfigurationError(
            f"points of different lengths ({len(a)} vs {len(b)}) cannot be compared"
        )
    return math.sqrt(sum((float(x) - float(y)) ** 2 for x, y in zip(a, b)))


class LeadClustering:
    """Single-pass leader clustering.

    Parameters
    ----------
    distance_threshold:
        A point joins the first cluster whose *leader* lies within this
        distance; otherwise it becomes the leader of a new cluster.
    """

    def __init__(self, distance_threshold: float) -> None:
        if distance_threshold <= 0.0:
            raise ConfigurationError("distance_threshold must be positive")
        self.distance_threshold = distance_threshold

    def fit(self, data: Sequence[Sequence[float]],
            order: Optional[Sequence[int]] = None) -> List[Cluster]:
        """Cluster ``data`` visiting the points in ``order`` (default: given order).

        Returns the clusters; each remembers the indices (into ``data``) of
        its members, so callers can map cluster sizes back onto points.

        The leader scan — by far the dominant cost, ``O(n * clusters * phi)``
        in the reference loop — is vectorized: each point's distance to every
        current leader comes from one :func:`~repro.core.kernels.batch_distances`
        call, and the distances are bit-identical to the reference's (see the
        kernel), so the first-leader-within-threshold assignment matches the
        reference cluster for cluster.  :meth:`fit_reference` keeps the loop
        as the parity oracle.
        """
        indices = self._validated_order(data, order)
        phi = len(data[indices[0]])
        # Leaders packed into a pre-grown array so the scan never reallocates;
        # column count is validated against the first visited point.
        leaders = np.empty((len(data), phi), dtype=np.float64)
        n_leaders = 0
        clusters: List[Cluster] = []
        threshold = self.distance_threshold
        for index in indices:
            point = data[index]
            if len(point) != phi:
                raise ConfigurationError(
                    f"points of different lengths ({phi} vs {len(point)}) "
                    "cannot be compared"
                )
            assigned = False
            if n_leaders:
                distances = batch_distances(leaders[:n_leaders],
                                            np.asarray(point, dtype=np.float64))
                hits = np.flatnonzero(distances <= threshold)
                if hits.size:
                    clusters[int(hits[0])].add(index, point)
                    assigned = True
            if not assigned:
                new_cluster = Cluster(leader=tuple(float(v) for v in point))
                new_cluster.add(index, point)
                clusters.append(new_cluster)
                leaders[n_leaders] = new_cluster.leader
                n_leaders += 1
        return clusters

    def fit_reference(self, data: Sequence[Sequence[float]],
                      order: Optional[Sequence[int]] = None) -> List[Cluster]:
        """The sequential reference loop :meth:`fit` must match exactly."""
        indices = self._validated_order(data, order)
        clusters: List[Cluster] = []
        for index in indices:
            point = data[index]
            assigned = False
            for cluster in clusters:
                if euclidean_distance(point, cluster.leader) <= self.distance_threshold:
                    cluster.add(index, point)
                    assigned = True
                    break
            if not assigned:
                new_cluster = Cluster(leader=tuple(float(v) for v in point))
                new_cluster.add(index, point)
                clusters.append(new_cluster)
        return clusters

    @staticmethod
    def _validated_order(data: Sequence[Sequence[float]],
                         order: Optional[Sequence[int]]) -> List[int]:
        if not data:
            raise ConfigurationError("cannot cluster an empty batch")
        indices = list(order) if order is not None else list(range(len(data)))
        if sorted(indices) != list(range(len(data))):
            raise ConfigurationError(
                "order must be a permutation of range(len(data))"
            )
        return indices

    def fit_multiple_orders(self, data: Sequence[Sequence[float]], *,
                            n_runs: int, seed: int = 0
                            ) -> List[List[Cluster]]:
        """Run :meth:`fit` under ``n_runs`` random permutations of the data."""
        if n_runs < 1:
            raise ConfigurationError("n_runs must be at least 1")
        rng = random.Random(seed)
        runs: List[List[Cluster]] = []
        for _ in range(n_runs):
            order = list(range(len(data)))
            rng.shuffle(order)
            runs.append(self.fit(data, order=order))
        return runs


def default_distance_threshold(data: Sequence[Sequence[float]],
                               fraction: float = 0.25) -> float:
    """Distance threshold as a fraction of the data's bounding-box diagonal.

    A simple, scale-aware default: clusters whose leaders are within
    ``fraction`` of the overall data diagonal are considered the same group.
    """
    if not data:
        raise ConfigurationError("cannot derive a threshold from an empty batch")
    if not 0.0 < fraction <= 1.0:
        raise ConfigurationError("fraction must lie in (0, 1]")
    phi = len(data[0])
    lows = [float("inf")] * phi
    highs = [float("-inf")] * phi
    for point in data:
        if len(point) != phi:
            raise ConfigurationError("all points must share one dimensionality")
        for i, value in enumerate(point):
            v = float(value)
            lows[i] = min(lows[i], v)
            highs[i] = max(highs[i], v)
    diagonal = math.sqrt(sum((hi - lo) ** 2 for lo, hi in zip(lows, highs)))
    if diagonal <= 0.0:
        return 1.0
    return diagonal * fraction
