"""Overall outlying degree of training points.

The unsupervised learning stage picks "the top training data that have the
highest overall outlying degree" and feeds them to MOGA; their sparse
subspaces become the CS component of the SST.  The outlying degree used here
follows the paper's recipe — it is computed *by employing the clustering
method* under several data orders:

    OD(p) = mean over runs of  (1 - |cluster_r(p)| / n)

where ``cluster_r(p)`` is the cluster point ``p`` lands in during run ``r``
and ``n`` is the batch size.  A point that keeps founding (or joining) tiny
clusters no matter the visiting order has OD close to 1; points inside big,
stable clusters have OD close to 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from .lead_clustering import Cluster, LeadClustering, default_distance_threshold


@dataclass(frozen=True)
class OutlyingDegreeResult:
    """Outlying degrees of a training batch.

    Attributes
    ----------
    degrees:
        OD value per point, aligned with the input batch.
    runs:
        Number of clustering runs averaged over.
    distance_threshold:
        Leader-clustering threshold that was used.
    """

    degrees: Tuple[float, ...]
    runs: int
    distance_threshold: float

    def top_indices(self, k: int) -> List[int]:
        """Indices of the ``k`` most outlying points, most outlying first."""
        if k <= 0:
            return []
        order = sorted(range(len(self.degrees)),
                       key=lambda i: self.degrees[i], reverse=True)
        return order[:k]

    def top_fraction_indices(self, fraction: float) -> List[int]:
        """Indices of the most outlying ``fraction`` of the batch (at least 1)."""
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError("fraction must lie in (0, 1]")
        k = max(1, int(round(fraction * len(self.degrees))))
        return self.top_indices(k)


def compute_outlying_degrees(data: Sequence[Sequence[float]], *,
                             n_runs: int = 3,
                             distance_threshold: Optional[float] = None,
                             distance_fraction: float = 0.25,
                             seed: int = 0) -> OutlyingDegreeResult:
    """Compute the overall outlying degree of every point in ``data``.

    Parameters
    ----------
    data:
        The training batch.
    n_runs:
        Number of lead-clustering passes under different random data orders.
    distance_threshold:
        Explicit leader-clustering threshold; derived from the data's
        bounding-box diagonal (``distance_fraction``) when omitted.
    distance_fraction:
        Fraction of the bounding-box diagonal used for the default threshold.
    seed:
        Seed controlling the random data orders.
    """
    if not data:
        raise ConfigurationError("cannot compute outlying degrees of an empty batch")
    threshold = distance_threshold if distance_threshold is not None else \
        default_distance_threshold(data, fraction=distance_fraction)
    clustering = LeadClustering(threshold)
    runs = clustering.fit_multiple_orders(data, n_runs=n_runs, seed=seed)

    n = len(data)
    totals = [0.0] * n
    for clusters in runs:
        sizes = _cluster_size_per_point(clusters, n)
        for i in range(n):
            totals[i] += 1.0 - sizes[i] / n
    degrees = tuple(total / len(runs) for total in totals)
    return OutlyingDegreeResult(degrees=degrees, runs=len(runs),
                                distance_threshold=threshold)


def _cluster_size_per_point(clusters: Sequence[Cluster], n: int) -> List[int]:
    """Size of the cluster each point index belongs to."""
    sizes = [0] * n
    for cluster in clusters:
        for index in cluster.member_indices:
            if index >= n:
                raise ConfigurationError(
                    f"cluster references point {index} outside the batch of size {n}"
                )
            sizes[index] = cluster.size
    if any(size == 0 for size in sizes):
        missing = [i for i, size in enumerate(sizes) if size == 0]
        raise ConfigurationError(
            f"points {missing[:5]} were not assigned to any cluster"
        )
    return sizes
