"""Lead clustering and outlying-degree computation for unsupervised learning."""

from .lead_clustering import (
    Cluster,
    LeadClustering,
    default_distance_threshold,
    euclidean_distance,
)
from .outlying_degree import OutlyingDegreeResult, compute_outlying_degrees

__all__ = [
    "Cluster",
    "LeadClustering",
    "default_distance_threshold",
    "euclidean_distance",
    "OutlyingDegreeResult",
    "compute_outlying_degrees",
]
