"""Micro-batch coalescing queues (one per shard).

The vectorized engine's whole advantage is amortising per-call work over
large ``process_batch`` chunks, but a serving layer receives points one
arrival at a time.  The :class:`MicroBatcher` sits between the two: arrivals
are appended to a bounded FIFO queue and the shard worker drains them in
coalesced batches under a max-batch-size / max-delay policy —

* a batch is emitted as soon as ``max_batch`` points are pending (throughput
  mode under load), or
* after ``max_delay`` seconds from the moment the worker started assembling
  it (latency bound under trickle traffic).

The queue is bounded at ``max_pending`` points; producers block when it is
full, which is the service's backpressure: a slow shard slows its producers
down instead of growing memory without bound.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

from ..core.exceptions import ConfigurationError


@dataclass(frozen=True)
class BatchItem:
    """One enqueued point: payload plus the bookkeeping the service needs."""

    seq: int
    stream_id: str
    values: Tuple[float, ...]
    enqueued_at: float


class MicroBatcher:
    """Bounded FIFO queue with size/delay batch coalescing (thread-safe).

    Parameters
    ----------
    max_batch:
        Largest batch handed to a worker in one :meth:`next_batch` call.
    max_delay:
        Longest time (seconds) a worker waits for more points once at least
        one is pending.  ``0`` disables waiting: the worker takes whatever is
        queued immediately (lowest latency, smallest batches).
    max_pending:
        Queue bound; :meth:`put` blocks while the queue holds this many
        points (backpressure).
    """

    def __init__(self, *, max_batch: int = 512, max_delay: float = 0.002,
                 max_pending: int = 8192) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be positive, got {max_batch}")
        if max_delay < 0.0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        if max_pending < max_batch:
            raise ConfigurationError(
                f"max_pending ({max_pending}) must be >= max_batch ({max_batch})")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_pending = max_pending
        self._items: Deque[BatchItem] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._batches_emitted = 0
        self._points_emitted = 0
        self._producer_blocks = 0
        self._peak_pending = 0

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def put(self, item: BatchItem) -> None:
        """Enqueue one point; blocks while the queue is full (backpressure)."""
        with self._not_full:
            if len(self._items) >= self.max_pending:
                self._producer_blocks += 1
                while len(self._items) >= self.max_pending and not self._closed:
                    self._not_full.wait(timeout=0.1)
            if self._closed:
                raise ConfigurationError("cannot put into a closed MicroBatcher")
            self._items.append(item)
            if len(self._items) > self._peak_pending:
                self._peak_pending = len(self._items)
            self._not_empty.notify()

    def close(self) -> None:
        """Stop accepting points; pending ones remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def next_batch(self) -> Optional[List[BatchItem]]:
        """Block for the next coalesced batch; ``None`` once closed and empty."""
        with self._not_empty:
            while not self._items and not self._closed:
                self._not_empty.wait(timeout=0.1)
            if not self._items:
                return None
            if self.max_delay > 0.0 and len(self._items) < self.max_batch \
                    and not self._closed:
                deadline = time.monotonic() + self.max_delay
                while len(self._items) < self.max_batch and not self._closed:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    self._not_empty.wait(timeout=remaining)
            n = min(len(self._items), self.max_batch)
            batch = [self._items.popleft() for _ in range(n)]
            self._batches_emitted += 1
            self._points_emitted += n
            self._not_full.notify_all()
            return batch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def stats(self) -> Dict[str, float]:
        """Coalescing counters (batches, points, mean batch size, pressure)."""
        with self._lock:
            batches = self._batches_emitted
            points = self._points_emitted
            return {
                "batches_emitted": float(batches),
                "points_emitted": float(points),
                "mean_batch_size": points / batches if batches else 0.0,
                "producer_blocks": float(self._producer_blocks),
                "peak_pending": float(self._peak_pending),
            }
