"""Micro-batch coalescing queues (one per shard).

The vectorized engine's whole advantage is amortising per-call work over
large ``process_batch`` chunks, but a serving layer receives points one
arrival at a time.  The :class:`MicroBatcher` sits between the two: arrivals
are appended to a bounded FIFO queue and the shard worker drains them in
coalesced batches under a max-batch-size / max-delay policy —

* a batch is emitted as soon as ``max_batch`` points are pending (throughput
  mode under load), or
* after ``max_delay`` seconds from the moment the worker started assembling
  it (latency bound under trickle traffic).

The queue is bounded at ``max_pending`` points; what happens to a producer
hitting the bound is the ``full_policy``:

* ``"block"`` (default, the historical behaviour) — wait until a worker
  drains room; backpressure with no bound on the wait.
* ``"timeout"`` — wait at most ``put_timeout`` seconds, then raise a typed
  :class:`~repro.core.exceptions.BackpressureTimeout` so a producer behind
  a stuck shard gets a bounded, recoverable failure instead of a hang.
* ``"shed"`` — never wait: :meth:`put` returns ``False`` immediately and
  the point is counted as shed (load-shedding at admission).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from ..core.exceptions import BackpressureTimeout, ConfigurationError

FULL_POLICIES = ("block", "timeout", "shed")


@dataclass(frozen=True)
class BatchItem:
    """One enqueued point: payload plus the bookkeeping the service needs."""

    seq: int
    stream_id: str
    values: Tuple[float, ...]
    enqueued_at: float


class MicroBatcher:
    """Bounded FIFO queue with size/delay batch coalescing (thread-safe).

    Parameters
    ----------
    max_batch:
        Largest batch handed to a worker in one :meth:`next_batch` call.
    max_delay:
        Longest time (seconds) a worker waits for more points once at least
        one is pending.  ``0`` disables waiting: the worker takes whatever is
        queued immediately (lowest latency, smallest batches).
    max_pending:
        Queue bound; a full queue engages the ``full_policy`` (backpressure).
    full_policy:
        What :meth:`put` does when the queue is full: ``"block"`` forever,
        ``"timeout"`` for at most ``put_timeout`` seconds (then raise
        :class:`BackpressureTimeout`), or ``"shed"`` the point immediately.
    put_timeout:
        The bound for the ``"timeout"`` policy, in seconds.
    """

    def __init__(self, *, max_batch: int = 512, max_delay: float = 0.002,
                 max_pending: int = 8192, full_policy: str = "block",
                 put_timeout: Optional[float] = None) -> None:
        if max_batch < 1:
            raise ConfigurationError(f"max_batch must be positive, got {max_batch}")
        if max_delay < 0.0:
            raise ConfigurationError(f"max_delay must be >= 0, got {max_delay}")
        if max_pending < max_batch:
            raise ConfigurationError(
                f"max_pending ({max_pending}) must be >= max_batch ({max_batch})")
        if full_policy not in FULL_POLICIES:
            raise ConfigurationError(
                f"full_policy must be one of {FULL_POLICIES}, "
                f"got {full_policy!r}")
        if full_policy == "timeout":
            if put_timeout is None or put_timeout <= 0.0:
                raise ConfigurationError(
                    "full_policy='timeout' needs a positive put_timeout")
        self.max_batch = max_batch
        self.max_delay = max_delay
        self.max_pending = max_pending
        self.full_policy = full_policy
        self.put_timeout = put_timeout
        self._items: Deque[BatchItem] = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False
        self._batches_emitted = 0
        self._points_emitted = 0
        self._producer_blocks = 0
        self._shed_points = 0
        self._peak_pending = 0

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def put(self, item: BatchItem, *, timeout: Optional[float] = None) -> bool:
        """Enqueue one point under the configured full-queue policy.

        Returns ``True`` when the point was enqueued, ``False`` when the
        ``"shed"`` policy dropped it.  A per-call ``timeout`` overrides the
        configured ``put_timeout`` (and implies the ``"timeout"`` policy for
        this call).  Raises :class:`BackpressureTimeout` when a bounded wait
        expires with the queue still full.
        """
        policy = self.full_policy if timeout is None else "timeout"
        bound = timeout if timeout is not None else self.put_timeout
        with self._not_full:
            if len(self._items) >= self.max_pending:
                if policy == "shed":
                    self._shed_points += 1
                    return False
                self._producer_blocks += 1
                deadline = None if policy == "block" \
                    else time.monotonic() + float(bound)
                while len(self._items) >= self.max_pending and not self._closed:
                    if deadline is None:
                        self._not_full.wait(timeout=0.1)
                        continue
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        raise BackpressureTimeout(
                            f"queue still full ({self.max_pending} points) "
                            f"after {bound}s")
                    self._not_full.wait(timeout=min(0.1, remaining))
            if self._closed:
                raise ConfigurationError("cannot put into a closed MicroBatcher")
            self._items.append(item)
            if len(self._items) > self._peak_pending:
                self._peak_pending = len(self._items)
            self._not_empty.notify()
            return True

    def requeue(self, items: Iterable[BatchItem]) -> None:
        """Put already-emitted items back at the *front*, in order.

        Recovery plumbing: a retiring consumer that popped a batch it can no
        longer process hands it back so the successor worker sees the stream
        in the original order.  Emission counters are rolled back so batch
        statistics reflect work actually done.
        """
        items = list(items)
        if not items:
            return
        with self._lock:
            for item in reversed(items):
                self._items.appendleft(item)
            self._points_emitted -= len(items)
            self._batches_emitted -= 1
            self._not_empty.notify()

    def close(self) -> None:
        """Stop accepting points; pending ones remain drainable."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def interrupt(self) -> None:
        """Wake consumers blocked in :meth:`next_batch` so they can re-check
        their stop condition (used when retiring a worker without closing
        the queue to producers)."""
        with self._lock:
            self._not_empty.notify_all()

    def next_batch(self, *, stop: Optional[threading.Event] = None
                   ) -> Optional[List[BatchItem]]:
        """Block for the next coalesced batch; ``None`` once closed and empty.

        When a ``stop`` event is supplied, the call also returns ``None`` as
        soon as the event is set — *without* consuming anything — so a
        retired consumer can step aside and leave queued points to its
        replacement (see :meth:`interrupt`).
        """
        with self._not_empty:
            while True:
                if stop is not None and stop.is_set():
                    return None
                if self._items or self._closed:
                    break
                self._not_empty.wait(timeout=0.1)
            if not self._items:
                return None
            if self.max_delay > 0.0 and len(self._items) < self.max_batch \
                    and not self._closed:
                deadline = time.monotonic() + self.max_delay
                while len(self._items) < self.max_batch and not self._closed:
                    if stop is not None and stop.is_set():
                        return None
                    remaining = deadline - time.monotonic()
                    if remaining <= 0.0:
                        break
                    self._not_empty.wait(timeout=remaining)
            if stop is not None and stop.is_set():
                return None
            n = min(len(self._items), self.max_batch)
            batch = [self._items.popleft() for _ in range(n)]
            self._batches_emitted += 1
            self._points_emitted += n
            self._not_full.notify_all()
            return batch

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        with self._lock:
            return self._closed

    def stats(self) -> Dict[str, float]:
        """Coalescing counters (batches, points, mean batch size, pressure)."""
        with self._lock:
            batches = self._batches_emitted
            points = self._points_emitted
            return {
                "batches_emitted": float(batches),
                "points_emitted": float(points),
                "mean_batch_size": points / batches if batches else 0.0,
                "producer_blocks": float(self._producer_blocks),
                "shed_points": float(self._shed_points),
                "peak_pending": float(self._peak_pending),
            }
