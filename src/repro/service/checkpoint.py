"""Service-level checkpointing: snapshot every shard, restore the fleet.

A service checkpoint is a directory::

    <dir>/shard-0-<gen>.npz     full-state detector checkpoint of shard 0
    <dir>/shard-1-<gen>.npz     ...
    <dir>/manifest.json         shard count, router salt, stream offset, extras
    <dir>/manifest-prev.json    the previous good manifest (fallback)

Shard files reuse the single-detector checkpoint format of
:mod:`repro.persist` — the ``spot-state/v2`` zero-copy ``.npz`` container,
each loadable standalone with ``load_checkpoint`` (directories written by
older builds with ``.json`` shard files still restore: the loader sniffs the
layout from the magic bytes, not the extension); the manifest ties them
together and records everything a restored service needs to route and resume
exactly like the original.

Crash safety: shard files are tagged with the checkpoint's generation (its
stream offset) so a re-checkpoint into the same directory never touches the
files the *previous* manifest references; the manifest itself is written
last via an atomic rename.  A crash at any point therefore leaves either the
complete old checkpoint or the complete new one, never a mixture.

Corruption safety goes one step further: each save first demotes the
current manifest to ``manifest-prev.json`` and keeps the shard files of both
generations, so when the *latest* checkpoint is later found truncated or
malformed on disk (a partial write the atomic rename could not guard, bit
rot, an operator's stray edit), :meth:`CheckpointManager.load_fleet` raises
a typed :class:`~repro.core.exceptions.CheckpointCorruptionError` for the
broken generation and falls back to the previous good one instead of dying
mid-restore.  Stale generations referenced by neither manifest are
garbage-collected only after the new manifest is in place.
"""

from __future__ import annotations

import json
import os
import shutil
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..core.detector import SPOT
from ..core.exceptions import CheckpointCorruptionError, SerializationError
from ..persist.serialization import (
    CHECKPOINT_FORMAT_VERSION,
    CHECKPOINT_STATE_FORMAT,
    detector_from_checkpoint_dict,
    read_checkpoint_file,
    write_checkpoint_payload,
)
from .faults import InjectedFault

PathLike = Union[str, Path]

#: Manifest format tag, bumped on incompatible layout changes.
SERVICE_MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"
PREV_MANIFEST_NAME = "manifest-prev.json"


def _shard_file(shard_id: int, generation: int) -> str:
    return f"shard-{shard_id}-{generation}.npz"


class CheckpointManager:
    """Reads and writes service checkpoints in one directory."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------ #
    # Saving
    # ------------------------------------------------------------------ #
    def save(self, shard_states: List[dict], *, router_salt: int,
             points_submitted: int, router: str = "static",
             router_pins: Optional[Dict[str, int]] = None,
             extra: Optional[Dict[str, object]] = None,
             fail_before_manifest: bool = False) -> Path:
        """Write one checkpoint (all shards + manifest); returns the directory.

        ``shard_states`` are the payloads of :meth:`SPOT.export_state`, in
        shard order; the caller (the service) guarantees they were taken at a
        quiescent point so they describe one consistent stream position.

        ``fail_before_manifest`` is the fault-injection hook: the shard
        files are written and then an :class:`InjectedFault` is raised
        *before* the manifest rename — exactly the torn state a crash in
        the middle of a save leaves behind.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        generation = int(points_submitted)
        shards = []
        for shard_id, state in enumerate(shard_states):
            path = self.directory / _shard_file(shard_id, generation)
            payload = {"format_version": CHECKPOINT_FORMAT_VERSION,
                       "kind": "spot-checkpoint",
                       "state_format": CHECKPOINT_STATE_FORMAT,
                       "state": state}
            temp = self.directory / (path.name + ".tmp")
            write_checkpoint_payload(payload, temp)
            os.replace(temp, path)
            shards.append({
                "shard": shard_id,
                "file": path.name,
                "points_processed": int(state["processed"]),
                # In-flight deferred learn requests captured inside the shard
                # state; surfaced here so operators (and tests) can see that
                # a checkpoint was taken mid-search without parsing states.
                "pending_learn_requests": len(
                    (state.get("learning") or {}).get("pending", [])),
            })
        if fail_before_manifest:
            raise InjectedFault(
                "injected checkpoint-write failure before the manifest rename")
        manifest = {
            "format_version": SERVICE_MANIFEST_VERSION,
            "n_shards": len(shard_states),
            "router_salt": int(router_salt),
            # Router kind + tenant pins (additive keys: manifests written by
            # older builds restore as the historical static router).
            "router": str(router),
            "router_pins": {str(stream): int(shard) for stream, shard
                            in (router_pins or {}).items()},
            "points_submitted": int(points_submitted),
            "shards": shards,
            "extra": dict(extra or {}),
        }
        # Demote the current manifest to the fallback slot before the new one
        # lands, so there is always one complete previous-good generation to
        # fall back to when the latest files turn out corrupted on disk.
        current = self.directory / MANIFEST_NAME
        if current.exists():
            shutil.copyfile(current, self.directory / PREV_MANIFEST_NAME)
        temp = self.directory / (MANIFEST_NAME + ".tmp")
        temp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(temp, current)
        keep = {entry["file"] for entry in shards}
        keep |= self._referenced_files(PREV_MANIFEST_NAME)
        self._collect_stale(keep=keep)
        return self.directory

    def _referenced_files(self, manifest_name: str) -> set:
        """Shard files a manifest points at ({} when absent/unreadable)."""
        path = self.directory / manifest_name
        if not path.exists():
            return set()
        try:
            manifest = json.loads(path.read_text())
            return {entry["file"] for entry in manifest["shards"]}
        except (json.JSONDecodeError, KeyError, TypeError):
            return set()

    def _collect_stale(self, keep: set) -> None:
        """Best-effort removal of shard files no manifest references anymore.

        Both shard-file layouts are swept so a directory upgraded from v1
        JSON checkpoints to v2 ``.npz`` ones does not keep orphaned JSON
        generations around forever.
        """
        for pattern in ("shard-*.json", "shard-*.npz"):
            for path in self.directory.glob(pattern):
                if path.name not in keep:
                    try:
                        path.unlink()
                    except OSError:
                        pass  # stale file is harmless; losing the race is fine

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def manifest(self, name: str = MANIFEST_NAME) -> Dict[str, object]:
        """Read and validate a checkpoint manifest."""
        path = self.directory / name
        if not path.exists():
            raise SerializationError(
                f"no service checkpoint manifest at {path}")
        try:
            manifest = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptionError(
                f"malformed manifest JSON at {path}: {exc}") from exc
        if not isinstance(manifest, dict):
            raise CheckpointCorruptionError(
                f"manifest at {path} is not a JSON object")
        version = manifest.get("format_version")
        if version != SERVICE_MANIFEST_VERSION:
            raise SerializationError(
                f"unsupported service manifest version {version!r} "
                f"(this build reads version {SERVICE_MANIFEST_VERSION})")
        return manifest

    def _load_generation(self, manifest: Dict[str, object]) -> List[SPOT]:
        """Rebuild every shard of one manifest, in shard order."""
        detectors: List[SPOT] = []
        for entry in manifest["shards"]:
            path = self.directory / entry["file"]
            if not path.exists():
                raise CheckpointCorruptionError(
                    f"manifest names a missing shard file: {path}")
            try:
                # Sniffs the layout from the magic bytes, so v1 JSON shard
                # files written before the .npz container remain loadable.
                payload = read_checkpoint_file(path)
                detectors.append(detector_from_checkpoint_dict(payload))
            except SerializationError as exc:
                raise CheckpointCorruptionError(
                    f"unreadable shard checkpoint {path}: {exc}") from exc
        return detectors

    def load_detectors(self) -> List[SPOT]:
        """Rebuild every shard's detector from the latest manifest."""
        return self._load_generation(self.manifest())

    def load_fleet(self) -> Tuple[Dict[str, object], List[SPOT]]:
        """Load the newest *intact* checkpoint: ``(manifest, detectors)``.

        Tries the latest generation first; on a typed corruption error it
        falls back to the previous good generation (kept by :meth:`save`)
        and reports which one actually loaded via the returned manifest.
        Raises :class:`CheckpointCorruptionError` describing both failures
        when neither generation survives.
        """
        try:
            manifest = self.manifest()
            return manifest, self._load_generation(manifest)
        except CheckpointCorruptionError as latest_error:
            try:
                manifest = self.manifest(PREV_MANIFEST_NAME)
                detectors = self._load_generation(manifest)
            except SerializationError as prev_error:
                raise CheckpointCorruptionError(
                    f"no intact checkpoint generation in {self.directory}: "
                    f"latest failed ({latest_error}); "
                    f"previous failed ({prev_error})") from latest_error
            return manifest, detectors
