"""Service-level checkpointing: snapshot every shard, restore the fleet.

A service checkpoint is a directory::

    <dir>/shard-0-<gen>.json   full-state detector checkpoint of shard 0
    <dir>/shard-1-<gen>.json   ...
    <dir>/manifest.json        shard count, router salt, stream offset, extras

Shard files reuse the single-detector checkpoint format of
:mod:`repro.persist` (each one can be loaded standalone with
``load_checkpoint``); the manifest ties them together and records everything
a restored service needs to route and resume exactly like the original.

Crash safety: shard files are tagged with the checkpoint's generation (its
stream offset) so a re-checkpoint into the same directory never touches the
files the *previous* manifest references; the manifest itself is written
last via an atomic rename.  A crash at any point therefore leaves either the
complete old checkpoint or the complete new one, never a mixture.  Stale
generations are garbage-collected only after the new manifest is in place.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..core.detector import SPOT
from ..core.exceptions import SerializationError
from ..persist.serialization import (
    CHECKPOINT_FORMAT_VERSION,
    detector_from_checkpoint_dict,
)

PathLike = Union[str, Path]

#: Manifest format tag, bumped on incompatible layout changes.
SERVICE_MANIFEST_VERSION = 1

MANIFEST_NAME = "manifest.json"


def _shard_file(shard_id: int, generation: int) -> str:
    return f"shard-{shard_id}-{generation}.json"


class CheckpointManager:
    """Reads and writes service checkpoints in one directory."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)

    # ------------------------------------------------------------------ #
    # Saving
    # ------------------------------------------------------------------ #
    def save(self, shard_states: List[dict], *, router_salt: int,
             points_submitted: int,
             extra: Optional[Dict[str, object]] = None) -> Path:
        """Write one checkpoint (all shards + manifest); returns the directory.

        ``shard_states`` are the payloads of :meth:`SPOT.export_state`, in
        shard order; the caller (the service) guarantees they were taken at a
        quiescent point so they describe one consistent stream position.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        generation = int(points_submitted)
        shards = []
        for shard_id, state in enumerate(shard_states):
            path = self.directory / _shard_file(shard_id, generation)
            payload = {"format_version": CHECKPOINT_FORMAT_VERSION,
                       "kind": "spot-checkpoint", "state": state}
            temp = self.directory / (path.name + ".tmp")
            temp.write_text(json.dumps(payload))
            os.replace(temp, path)
            shards.append({
                "shard": shard_id,
                "file": path.name,
                "points_processed": int(state["processed"]),
                # In-flight deferred learn requests captured inside the shard
                # state; surfaced here so operators (and tests) can see that
                # a checkpoint was taken mid-search without parsing states.
                "pending_learn_requests": len(
                    (state.get("learning") or {}).get("pending", [])),
            })
        manifest = {
            "format_version": SERVICE_MANIFEST_VERSION,
            "n_shards": len(shard_states),
            "router_salt": int(router_salt),
            "points_submitted": int(points_submitted),
            "shards": shards,
            "extra": dict(extra or {}),
        }
        temp = self.directory / (MANIFEST_NAME + ".tmp")
        temp.write_text(json.dumps(manifest, indent=2, sort_keys=True))
        os.replace(temp, self.directory / MANIFEST_NAME)
        self._collect_stale(keep={entry["file"] for entry in shards})
        return self.directory

    def _collect_stale(self, keep: set) -> None:
        """Best-effort removal of shard files no manifest references anymore."""
        for path in self.directory.glob("shard-*.json"):
            if path.name not in keep:
                try:
                    path.unlink()
                except OSError:
                    pass  # a stale file is harmless; losing the race is fine

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def manifest(self) -> Dict[str, object]:
        """Read and validate the checkpoint manifest."""
        path = self.directory / MANIFEST_NAME
        if not path.exists():
            raise SerializationError(
                f"no service checkpoint manifest at {path}")
        try:
            manifest = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise SerializationError(f"malformed manifest JSON: {exc}") from exc
        version = manifest.get("format_version")
        if version != SERVICE_MANIFEST_VERSION:
            raise SerializationError(
                f"unsupported service manifest version {version!r} "
                f"(this build reads version {SERVICE_MANIFEST_VERSION})")
        return manifest

    def load_detectors(self) -> List[SPOT]:
        """Rebuild every shard's detector, in shard order."""
        manifest = self.manifest()
        detectors: List[SPOT] = []
        for entry in manifest["shards"]:
            path = self.directory / entry["file"]
            if not path.exists():
                raise SerializationError(
                    f"manifest names a missing shard file: {path}")
            try:
                payload = json.loads(path.read_text())
            except json.JSONDecodeError as exc:
                raise SerializationError(
                    f"malformed shard checkpoint {path}: {exc}") from exc
            detectors.append(detector_from_checkpoint_dict(payload))
        return detectors
