"""Shard supervision: crash detection, checkpoint restart, journal replay.

The serving layer's historical failure semantics were *fail-stop*: one
worker exception poisoned its shard until ``drain()``/``stop()`` surfaced
the error.  The :class:`ShardSupervisor` upgrades a
:class:`~repro.service.service.DetectionService` to *fail-recover*:

1. **Detect** — every failed delivery (a thread worker exception, a dead
   child process, a poison point) reaches the supervisor as a crash event
   carrying the undelivered :class:`BatchItem`s.
2. **Retire** — the failed worker stops consuming; any batch it had already
   popped is handed back to the front of the queue, so the backlog keeps
   its stream order for the replacement.
3. **Restore** — a fresh detector is rebuilt from the shard's latest
   checkpoint snapshot (the service snapshots every shard at ``start()``
   and again at every checkpoint, via the loss-free ``export_state``
   contract).  In-flight deferred learn requests ride inside the snapshot
   and are re-evaluated before the first replayed point, so learning state
   survives the restart.
4. **Replay** — the journal of points committed since that snapshot is
   re-scored, bringing the detector to the exact state it held at the
   crash; then the undelivered points are scored and delivered.  Because
   the detector is deterministic and the journal preserves arrival order,
   post-recovery decisions are identical to a crash-free run — the parity
   suite pins this down.
5. **Quarantine** — a point whose scoring keeps crashing (``N`` observed
   failures) is a *poison point*: it is skipped, reported with a
   ``"quarantined"`` outcome, and never folded into the detector, instead
   of burning the restart budget forever.

Recovery runs on a dedicated thread so worker callbacks never block, and
every swap is published back into the service under its lock (stats,
detector registry, worker registry), so checkpoints and parity checks see
the live replacement.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Dict, List, Optional, Set, Tuple

from ..core.detector import SPOT
from ..core.exceptions import ShardRecoveryError
from ..obs.trace import NULL_TRACER
from .batcher import BatchItem

#: Upper bound on restore-replay-probe rounds within one recovery; a replay
#: that cannot converge in this many rounds (fresh poison point every round)
#: is surfaced as a recovery failure instead of looping.
MAX_REPLAY_ROUNDS = 8


class ShardSupervisor:
    """Monitors shard workers and restarts crashed shards from checkpoints.

    Parameters
    ----------
    service:
        The owning :class:`~repro.service.service.DetectionService`; the
        supervisor is part of the service layer and uses its private wiring
        (worker construction, result delivery, stats) under the service's
        locks.
    max_restarts_per_shard:
        Crash budget per shard; one more crash surfaces a
        :class:`ShardRecoveryError` through ``drain()``/``stop()``.
    poison_threshold:
        Observed scoring failures after which a point is quarantined.
    """

    def __init__(self, service, *, max_restarts_per_shard: int = 5,
                 poison_threshold: int = 3) -> None:
        self._service = service
        self.max_restarts_per_shard = max_restarts_per_shard
        self.poison_threshold = poison_threshold
        self._tracer = getattr(service, "_tracer", None) or NULL_TRACER
        self._events: "queue.Queue[Optional[Tuple[int, List[BatchItem], str]]]" \
            = queue.Queue()
        self._state_lock = threading.Lock()
        self._snapshots: Dict[int, dict] = {}
        self._journals: Dict[int, List[BatchItem]] = {}
        self._poison_counts: Dict[int, int] = {}
        self._restarts: Dict[int, int] = {}
        self._accepting = False
        self._outstanding = 0
        self._idle = threading.Condition()
        self._thread = threading.Thread(target=self._run,
                                        name="spot-supervisor", daemon=True)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "ShardSupervisor":
        self._accepting = True
        self._thread.start()
        return self

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Finish in-flight recoveries, then stop accepting crash events."""
        self._accepting = False
        self.quiesce(timeout=timeout)
        self._events.put(None)
        self._thread.join(timeout=timeout)

    def quiesce(self, timeout: Optional[float] = None) -> None:
        """Block until every enqueued crash event has been fully handled."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._idle:
            while self._outstanding > 0:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0.0:
                    raise ShardRecoveryError(
                        f"supervisor quiesce timed out with "
                        f"{self._outstanding} recoveries in flight")
                self._idle.wait(timeout=0.1 if remaining is None
                                else min(0.1, remaining))

    # ------------------------------------------------------------------ #
    # Bookkeeping fed by the service
    # ------------------------------------------------------------------ #
    def install_snapshots(self, states: List[dict]) -> None:
        """Adopt fresh quiescent snapshots; journals restart from here.

        Called at service ``start()`` (initial detector states) and after
        every successful checkpoint — a failed checkpoint save keeps the old
        snapshot *and* the journal, so recovery never depends on a
        checkpoint that may not exist on disk.
        """
        with self._state_lock:
            for shard_id, state in enumerate(states):
                self._snapshots[shard_id] = state
                self._journals[shard_id] = []

    def adopt_shard(self, shard_id: int, state: dict) -> None:
        """Start supervising one (new) shard from a fresh quiescent snapshot.

        The rebalancer calls this when a fleet grows: the migrated detector
        state is the shard's zeroth checkpoint, and its journal starts
        empty — a crash before the next full checkpoint replays from here.
        """
        with self._state_lock:
            self._snapshots[shard_id] = state
            self._journals[shard_id] = []
            self._restarts.pop(shard_id, None)

    def drop_shard(self, shard_id: int) -> None:
        """Forget a retired shard (fleet shrink): snapshot, journal, budget."""
        with self._state_lock:
            self._snapshots.pop(shard_id, None)
            self._journals.pop(shard_id, None)
            self._restarts.pop(shard_id, None)

    def record_committed(self, shard_id: int, items: List[BatchItem]) -> None:
        """Journal points folded into a shard's detector since its snapshot."""
        with self._state_lock:
            self._journals.setdefault(shard_id, []).extend(items)

    def restarts_of(self, shard_id: int) -> int:
        """How many times a shard has been restarted so far."""
        with self._state_lock:
            return self._restarts.get(shard_id, 0)

    # ------------------------------------------------------------------ #
    # Crash intake (called from worker threads, under the service lock)
    # ------------------------------------------------------------------ #
    def submit_failure(self, shard_id: int, items: List[BatchItem],
                       error: str) -> bool:
        """Enqueue a crash for recovery; ``False`` when no longer accepting."""
        if not self._accepting:
            return False
        with self._idle:
            self._outstanding += 1
        self._events.put((shard_id, list(items), error))
        return True

    # ------------------------------------------------------------------ #
    # Recovery thread
    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        while True:
            event = self._events.get()
            if event is None:
                return
            shard_id, items, error = event
            try:
                self._recover(shard_id, items, error)
            except Exception as exc:
                self._service._record_shard_error(
                    shard_id, f"recovery failed: "
                    f"{type(exc).__name__}: {exc}")
            finally:
                with self._idle:
                    self._outstanding -= 1
                    self._idle.notify_all()

    def _restore(self, snapshot: dict) -> SPOT:
        """Materialise a snapshot for replay (learning inline, sync)."""
        detector = SPOT.from_state(snapshot)
        # Replay resolves deferred searches inline; publications are
        # bit-identical to the coordinator's, so the replayed state matches
        # the crash-free one regardless of the service's learning mode.
        detector.set_deferred_learning(False)
        if detector.pending_learn_requests:
            detector.resolve_pending_learns()
        return detector

    def _recover(self, shard_id: int, failed_items: List[BatchItem],
                 error: str) -> None:
        started = time.monotonic()
        seq_first = failed_items[0].seq if failed_items else -1
        with self._tracer.span("supervisor.recover", shard=shard_id,
                               seq_first=seq_first) as span:
            self._recover_traced(shard_id, failed_items, error, started,
                                 span)

    def _recover_traced(self, shard_id: int, failed_items: List[BatchItem],
                        error: str, started: float, span) -> None:
        service = self._service
        old_worker = service._workers[shard_id]
        # The failed worker retires: it stops consuming (requeueing any batch
        # it already popped) and leaves the backlog to its replacement.
        old_worker.retire()
        if hasattr(old_worker, "join"):
            old_worker.join(timeout=30.0)
        if hasattr(old_worker, "drain_pending"):
            # Process flavour: the feeder may have shipped one more batch
            # after the collector gave up on the child — sweep those
            # undelivered points into this recovery.  Per-shard traffic is
            # seq-ordered, so merging by seq restores arrival order.
            swept = old_worker.drain_pending()
            if swept:
                by_seq = {item.seq: item for item in failed_items}
                by_seq.update((item.seq, item) for item in swept)
                failed_items = sorted(by_seq.values(),
                                      key=lambda item: item.seq)
        with self._state_lock:
            restarts = self._restarts.get(shard_id, 0)
            if restarts >= self.max_restarts_per_shard:
                budget_exhausted = True
            else:
                budget_exhausted = False
                self._restarts[shard_id] = restarts + 1
            snapshot = self._snapshots[shard_id]
            journal = list(self._journals.get(shard_id, []))
        if budget_exhausted:
            span.annotate(outcome="budget_exhausted")
            raise ShardRecoveryError(
                f"restart budget ({self.max_restarts_per_shard}) exhausted; "
                f"last failure: {error}")
        span.annotate(restart=restarts + 1, journal_points=len(journal),
                      failed_points=len(failed_items))

        # Crash-time flight snapshot: taken before replay mutates anything,
        # so the diagnostics bundle's ring still shows the decisions
        # committed right up to the crash (no-op when recording is off).
        diag_path = service._emit_crash_diagnostics(shard_id, error)
        if diag_path is not None:
            span.annotate(diagnostics=str(diag_path))

        replay_items = journal + failed_items
        failed_seqs = {item.seq for item in failed_items}
        detector, delivered, quarantined = \
            self._replay(shard_id, snapshot, replay_items, parent=span)

        # Deliver what the crash swallowed: results for the undelivered
        # points (journal points were already delivered pre-crash; replay
        # recomputes them identically) and quarantine reports for poison
        # points.  Delivery goes through the service's normal path, which
        # also re-journals the recovered points for any later crash.
        recovered = [(item, result) for item, result in delivered
                     if item.seq in failed_seqs]
        busy = time.monotonic() - started
        if recovered:
            service._on_results(shard_id, [it for it, _ in recovered],
                                [res for _, res in recovered], busy, None)
        poisoned = [item for item in quarantined if item.seq in failed_seqs]
        if poisoned:
            service._deliver_quarantined(shard_id, poisoned)

        service._install_replacement(shard_id, detector)
        elapsed = time.monotonic() - started
        span.annotate(outcome="recovered", delivered=len(recovered),
                      quarantined=len(poisoned))
        with service._lock:
            stats = service._stats[shard_id]
            stats.restarts.inc()
            stats.recovery_seconds.inc(elapsed)

    def _replay(self, shard_id: int, snapshot: dict,
                items: List[BatchItem], parent=None
                ) -> Tuple[SPOT, List[Tuple[BatchItem, object]],
                           List[BatchItem]]:
        """Restore a shard and re-score everything since its snapshot.

        Returns ``(detector, delivered, quarantined)`` with ``delivered``
        the ``(item, result)`` pairs of every non-poison point in order.
        The fast path replays in one deterministic batch; when it crashes,
        a probe pass isolates the poison point, charges it one (or more)
        observed failures, and — once quarantined — the batch is replayed
        again from a *fresh* restore with the point skipped, so torn probe
        state never leaks into the final detector.
        """
        with self._state_lock:
            skip: Set[int] = {seq for seq, count in self._poison_counts.items()
                              if count >= self.poison_threshold}
        quarantined: List[BatchItem] = []
        for round_number in range(MAX_REPLAY_ROUNDS):
            with self._tracer.span("supervisor.restore", parent=parent,
                                   shard=shard_id, round=round_number):
                detector = self._restore(snapshot)
            live = [item for item in items if item.seq not in skip]
            with self._tracer.span("supervisor.replay", parent=parent,
                                   shard=shard_id, round=round_number,
                                   n=len(live)) as replay_span:
                try:
                    results = detector.detect(
                        [item.values for item in live]) if live else []
                    quarantined = [item for item in items
                                   if item.seq in skip]
                    replay_span.annotate(outcome="replayed")
                    return detector, list(zip(live, results)), quarantined
                except Exception:
                    replay_span.annotate(outcome="probe")
                    # fall through to the isolating probe pass
            probe = self._restore(snapshot)
            offender: Optional[BatchItem] = None
            for item in live:
                try:
                    probe.process(item.values)
                except Exception:
                    offender = item
                    break
            if offender is None:
                raise ShardRecoveryError(
                    f"shard {shard_id}: batched replay fails but every "
                    f"point scores individually")
            with self._state_lock:
                crashes = self._poison_counts.get(offender.seq, 0) + 1
            # Give the point its remaining chances immediately: each extra
            # raise is one more observed scoring failure, a success means
            # the earlier crash was environmental and the batch is retried.
            while crashes < self.poison_threshold:
                try:
                    probe.process(offender.values)
                    break
                except Exception:
                    crashes += 1
            with self._state_lock:
                self._poison_counts[offender.seq] = crashes
                if crashes >= self.poison_threshold:
                    skip.add(offender.seq)
        raise ShardRecoveryError(
            f"shard {shard_id}: replay did not converge within "
            f"{MAX_REPLAY_ROUNDS} rounds")
