"""The learning coordinator: online MOGA off the detection hot path.

``LearningCoordinator`` is the learning half of the serving layer.  Detection
shards running in deferred-learning mode emit
:mod:`repro.learning.requests` objects (self-evolution due, outlier-driven
growth, periodic relearn) instead of searching inline; the coordinator

* **coalesces** the requests of one apply point — they share a reservoir
  snapshot version — into a single evaluation task,
* **shares** one :class:`~repro.moga.batch_objectives.SharedBatchContext`
  (quantised batch, marginals, objective memo) per snapshot, so every search
  over the same reservoir skips the per-search batch preparation and reuses
  memoised objective vectors,
* **evaluates** on a configurable worker pool — threads by default (NumPy
  releases the GIL inside the fused objective passes), one-task-per-process
  optionally — overlapping searches with each other and with the shards'
  detection work,
* **publishes** the resulting ranked subspaces back as
  :class:`~repro.learning.requests.LearnPublication` objects, which the
  shard workers apply at the request's deterministic apply point.

Because every request is pure data and every evaluation is a pure function,
the publications are bit-identical to what the synchronous path computes —
the coordinator changes *where* the search runs, never what it returns.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.grid import DomainBounds, Grid
from ..learning.requests import (
    LearnPublication,
    evaluate_learn_request,
    request_from_dict,
)
from ..moga import BatchSparsityObjectives, SharedBatchContext
from ..obs.trace import NULL_TRACER

LEARNING_WORKER_MODES = ("thread", "process")


@dataclass(frozen=True)
class LearningServiceConfig:
    """Tunables of the learning coordinator (not of the searches themselves)."""

    workers: int = 2
    worker_mode: str = "thread"
    #: Shared snapshot contexts kept warm (LRU).  One per in-flight reservoir
    #: version is plenty; a few extra absorb bursts from many shards.
    context_cache_size: int = 8

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError(
                f"workers must be positive, got {self.workers}")
        if self.worker_mode not in LEARNING_WORKER_MODES:
            raise ConfigurationError(
                f"worker_mode must be one of {LEARNING_WORKER_MODES}, "
                f"got {self.worker_mode!r}")
        if self.context_cache_size < 1:
            raise ConfigurationError("context_cache_size must be positive")


class LearnTicket:
    """Handle on one submitted request group; resolves to its publications."""

    def __init__(self, request_ids: Sequence[str], future: Future,
                 *, from_dicts: bool) -> None:
        self.request_ids = tuple(request_ids)
        self._future = future
        self._from_dicts = from_dicts

    def wait(self, timeout: Optional[float] = None) -> List[LearnPublication]:
        """Block until the group is evaluated; publications in request order."""
        payload = self._future.result(timeout=timeout)
        if self._from_dicts:
            return [LearnPublication.from_dict(entry) for entry in payload]
        return list(payload)

    def done(self) -> bool:
        """Whether the evaluation has finished (successfully or not)."""
        return self._future.done()


def _grid_payload(grid: Grid) -> dict:
    return {"lows": list(grid.bounds.lows),
            "highs": list(grid.bounds.highs),
            "cells_per_dimension": grid.cells_per_dimension}


def _grid_from_payload(payload: dict) -> Grid:
    return Grid(bounds=DomainBounds(lows=tuple(payload["lows"]),
                                    highs=tuple(payload["highs"])),
                cells_per_dimension=int(payload["cells_per_dimension"]))


def _evaluate_group_remote(grid_payload: dict,
                           request_payloads: List[dict]) -> List[dict]:
    """Process-pool task: rebuild the group from plain data and evaluate it.

    Requests of one group share a snapshot, so even without the coordinator's
    cross-group context cache the group builds its shared context once.
    """
    grid = _grid_from_payload(grid_payload)
    requests = [request_from_dict(payload) for payload in request_payloads]
    context: Optional[SharedBatchContext] = None
    publications = []
    for request in requests:
        objectives = None
        if request.engine == "vectorized":
            if context is None or context.version != request.snapshot.version:
                context = SharedBatchContext(request.snapshot.points, grid,
                                             version=request.snapshot.version)
            objectives = BatchSparsityObjectives.from_context(
                context, target_points=request.target_points,
                memo=context.memo_view(request.target_key))
        publications.append(
            evaluate_learn_request(request, grid, objectives=objectives))
    return [publication.to_dict() for publication in publications]


class LearningCoordinator:
    """Evaluates learn requests on a worker pool, one context per snapshot."""

    def __init__(self, config: Optional[LearningServiceConfig] = None, *,
                 tracer=None) -> None:
        self.config = config if config is not None else LearningServiceConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._executor = None
        self._lock = threading.Lock()
        #: (shard_id, snapshot version) -> SharedBatchContext, LRU-bounded.
        self._contexts: "OrderedDict[Tuple[int, int], SharedBatchContext]" = \
            OrderedDict()
        self._started = False
        self._stopped = False
        self._requests = 0
        self._groups = 0
        self._contexts_built = 0
        self._context_reuses = 0
        # Memo traffic of contexts already evicted from the LRU cache, so
        # stats() reports lifetime totals rather than the surviving tail.
        self._evicted_memo_hits = 0
        self._evicted_memo_misses = 0
        self._kind_counts: Dict[str, int] = {}
        self._busy_seconds = 0.0

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "LearningCoordinator":
        """Spin up the worker pool."""
        if self._started:
            raise ConfigurationError("the coordinator is already started")
        if self._stopped:
            raise ConfigurationError(
                "a stopped coordinator cannot be restarted")
        if self.config.worker_mode == "thread":
            self._executor = ThreadPoolExecutor(
                max_workers=self.config.workers,
                thread_name_prefix="spot-learn")
        else:
            from concurrent.futures import ProcessPoolExecutor

            self._executor = ProcessPoolExecutor(
                max_workers=self.config.workers)
        self._started = True
        return self

    def stop(self, timeout: Optional[float] = None) -> None:
        """Finish in-flight evaluations and shut the pool down."""
        if not self._started or self._stopped:
            return
        self._stopped = True
        assert self._executor is not None
        # ``timeout`` is advisory: Executor.shutdown has no timeout knob, but
        # evaluations are finite MOGA runs, so waiting is bounded in practice.
        del timeout
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "LearningCoordinator":
        return self.start() if not self._started else self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #
    def submit(self, shard_id: int, grid: Grid, requests: Sequence
               ) -> LearnTicket:
        """Queue one apply point's request group; returns its ticket.

        All requests of a group must share one reservoir snapshot (they are
        the triggers of a single stream position); the group is evaluated as
        one pool task through one shared objective context.
        """
        if not self._started or self._stopped:
            raise ConfigurationError(
                "the learning coordinator is not running")
        if not requests:
            raise ConfigurationError("cannot submit an empty request group")
        versions = {request.snapshot.version for request in requests}
        if len(versions) > 1:
            raise ConfigurationError(
                f"a request group must share one snapshot version, "
                f"got {sorted(versions)}")
        with self._lock:
            self._requests += len(requests)
            self._groups += 1
            for request in requests:
                self._kind_counts[request.kind] = \
                    self._kind_counts.get(request.kind, 0) + 1
        assert self._executor is not None
        if self.config.worker_mode == "process":
            future = self._executor.submit(
                _evaluate_group_remote, _grid_payload(grid),
                [request.to_dict() for request in requests])
            return LearnTicket([r.request_id for r in requests], future,
                               from_dicts=True)
        future = self._executor.submit(self._evaluate_group, shard_id, grid,
                                       list(requests))
        return LearnTicket([r.request_id for r in requests], future,
                           from_dicts=False)

    # ------------------------------------------------------------------ #
    # Evaluation (thread mode)
    # ------------------------------------------------------------------ #
    def _context_for(self, shard_id: int, grid: Grid,
                     snapshot) -> SharedBatchContext:
        key = (shard_id, snapshot.version)
        with self._lock:
            context = self._contexts.get(key)
            if context is not None:
                self._contexts.move_to_end(key)
                self._context_reuses += 1
                return context
        # Built outside the lock (quantisation is the expensive part); a
        # racing builder for the same key just wastes one build.
        context = SharedBatchContext(snapshot.points, grid,
                                     version=snapshot.version)
        with self._lock:
            self._contexts_built += 1
            self._contexts[key] = context
            while len(self._contexts) > self.config.context_cache_size:
                _, evicted = self._contexts.popitem(last=False)
                self._evicted_memo_hits += evicted.memo.hits
                self._evicted_memo_misses += evicted.memo.misses
        return context

    def evict_shard(self, shard_id: int) -> int:
        """Drop every cached snapshot context of one shard.

        Called by the service when a shard is restarted after a crash: the
        dead worker's reservoir snapshots are gone, so their contexts can
        never be reused and would only squat in the LRU.  Returns how many
        contexts were evicted.
        """
        with self._lock:
            stale = [key for key in self._contexts if key[0] == shard_id]
            for key in stale:
                evicted = self._contexts.pop(key)
                self._evicted_memo_hits += evicted.memo.hits
                self._evicted_memo_misses += evicted.memo.misses
        return len(stale)

    def _evaluate_group(self, shard_id: int, grid: Grid,
                        requests: List) -> List[LearnPublication]:
        started = time.perf_counter()
        publications = []
        with self.tracer.span("learning.evaluate", shard=shard_id,
                              request=requests[0].request_id,
                              n=len(requests)):
            for request in requests:
                objectives = None
                if request.engine == "vectorized":
                    context = self._context_for(shard_id, grid,
                                                request.snapshot)
                    objectives = BatchSparsityObjectives.from_context(
                        context, target_points=request.target_points,
                        memo=context.memo_view(request.target_key))
                publications.append(
                    evaluate_learn_request(request, grid,
                                           objectives=objectives))
        with self._lock:
            self._busy_seconds += time.perf_counter() - started
        return publications

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def stats(self) -> Dict[str, object]:
        """Coordinator-side serving statistics."""
        with self._lock:
            memo_hits = self._evicted_memo_hits + \
                sum(c.memo.hits for c in self._contexts.values())
            memo_misses = self._evicted_memo_misses + \
                sum(c.memo.misses for c in self._contexts.values())
            return {
                "workers": self.config.workers,
                "worker_mode": self.config.worker_mode,
                "requests": self._requests,
                "request_groups": self._groups,
                "coalesced_requests": self._requests - self._groups,
                "contexts_built": self._contexts_built,
                "context_reuses": self._context_reuses,
                "memo_hits": memo_hits,
                "memo_misses": memo_misses,
                "busy_seconds": round(self._busy_seconds, 4),
                "kinds": dict(self._kind_counts),
            }
