"""Sharded multi-stream detection service.

This package is the serving layer on top of the vectorized detection engine:
many independent streams (tenants) are multiplexed over a small pool of SPOT
detector shards.

* :class:`~repro.service.router.ShardRouter` — stable hash partitioning of
  stream ids onto shards (a stream's points always reach the same shard, in
  arrival order).
* :class:`~repro.service.ring.RingRouter` — the elastic alternative: a
  consistent-hash ring with virtual nodes, so resizing the fleet moves only
  ~K/n of the tenants (``ServiceConfig.router="ring"`` selects it).
* :class:`~repro.service.rebalance.FleetRebalancer` — live fleet elasticity
  on a running service: shard split/merge and tenant migration that drain,
  ship detector state zero-copy, and commit a new topology with decision-
  and SST-identical parity across the migration window.
* :class:`~repro.service.batcher.MicroBatcher` — per-shard FIFO queues that
  coalesce arrivals into ``process_batch``-sized chunks under a
  max-batch-size / max-delay policy, with bounded-queue backpressure.
* :class:`~repro.service.worker.ShardWorker` /
  :class:`~repro.service.worker.ProcessShardWorker` — the worker pool driving
  the vectorized engine (threads by default, one OS process per shard
  optionally), reporting per-shard throughput and latency percentiles.
* :class:`~repro.service.checkpoint.CheckpointManager` — periodic full-state
  snapshots of every shard; a whole service can be restored and resumed
  decision-identically.
* :class:`~repro.service.learning.LearningCoordinator` — the asynchronous
  learning half: detection shards in deferred-learning mode emit learn
  requests (outlier-driven growth, CS self-evolution, periodic relearn)
  that are coalesced per reservoir snapshot, evaluated on a worker pool
  through snapshot-shared objective contexts, and published back for
  application at deterministic apply points (decision-identical to inline
  learning).
* :class:`~repro.service.supervisor.ShardSupervisor` — the fault-tolerance
  half: crashed shards are restarted from their latest checkpoint snapshot
  and the points committed since are replayed decision-identically; poison
  points are quarantined instead of retried forever.
* :mod:`~repro.service.faults` — deterministic, seedable fault injection
  (worker crashes, queue stalls, IPC failures, checkpoint-write failures)
  plus the bounded retry/backoff policy the process-shard IPC uses.
* :class:`~repro.service.service.DetectionService` — the facade wiring the
  pieces together (``ServiceConfig.learning_mode`` picks sync or async,
  ``ServiceConfig.supervise`` turns fail-stop shards into fail-recover
  ones).
"""

from .batcher import BatchItem, FULL_POLICIES, MicroBatcher
from .checkpoint import CheckpointManager, SERVICE_MANIFEST_VERSION
from .faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    TransientIPCError,
    call_with_retry,
)
from .learning import (
    LearningCoordinator,
    LearningServiceConfig,
    LearnTicket,
)
from .rebalance import FleetRebalancer, MigrationReport
from .ring import DEFAULT_VNODES, ROUTER_KINDS, RingRouter, make_router
from .router import ShardRouter
from .service import DetectionService, ServiceConfig, ServiceResult
from .supervisor import ShardSupervisor
from .worker import (
    DEADLINE_POLICIES,
    ProcessShardWorker,
    ShardStats,
    ShardWorker,
)

__all__ = [
    "BatchItem",
    "CheckpointManager",
    "DEADLINE_POLICIES",
    "DEFAULT_VNODES",
    "DetectionService",
    "FULL_POLICIES",
    "FaultInjector",
    "FaultPlan",
    "FleetRebalancer",
    "InjectedFault",
    "LearnTicket",
    "LearningCoordinator",
    "LearningServiceConfig",
    "MicroBatcher",
    "MigrationReport",
    "ProcessShardWorker",
    "ROUTER_KINDS",
    "RetryPolicy",
    "RingRouter",
    "SERVICE_MANIFEST_VERSION",
    "ServiceConfig",
    "ServiceResult",
    "ShardRouter",
    "ShardStats",
    "ShardSupervisor",
    "ShardWorker",
    "TransientIPCError",
    "call_with_retry",
    "make_router",
]
