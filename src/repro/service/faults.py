"""Deterministic fault injection for the sharded serving layer.

Fault tolerance is only trustworthy if its failure paths run on every CI
pass, which means crashes have to be *scheduled*, not hoped for.  A
:class:`FaultPlan` is a seeded, serialisable description of exactly which
faults fire and where:

* **worker crash at point k** — the worker owning global sequence ``k``
  commits a prefix of the batch containing ``k`` to its detector and then
  dies (a hard ``os._exit`` in process mode), leaving a torn batch whose
  results were never delivered.  This is the worst case the supervisor's
  snapshot-plus-replay recovery has to absorb.
* **checkpoint-write failure at save n** — the n-th checkpoint save writes
  its shard files and dies before the manifest rename, exercising the
  crash-safety contract (the previous checkpoint stays complete).
* **queue stall at point k** — the batch containing ``k`` sleeps before
  scoring, aging everything queued behind it past any configured deadline
  (drives the shed path) and exercising IPC retry in process mode.
* **transient IPC failure at point k** — the first attempt to ship the
  batch containing ``k`` over the process-shard inbox raises, exercising
  the bounded retry/backoff path.

Because every trigger is keyed on a global sequence number and each point
reaches exactly one shard exactly once, a plan fires the same faults at the
same stream positions on every run — and replayed points recovered by the
supervisor never re-trigger an environmental fault (only genuinely poison
points crash again, which is exactly the semantics quarantine needs).

:class:`RetryPolicy` lives here too: bounded exponential backoff with
deterministic jitter, used by the process-shard IPC path and testable
against injected transient failures.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError, SPOTError


class InjectedFault(SPOTError):
    """An error raised on purpose by the fault-injection harness."""


class TransientIPCError(SPOTError):
    """A (simulated) transient queue failure; retrying is expected to work."""


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of faults, keyed on global sequence numbers."""

    #: Global seqs at which the owning worker crashes mid-batch.
    crash_points: Tuple[int, ...] = ()
    #: ``(seq, seconds)`` pairs: the batch containing ``seq`` stalls before
    #: scoring.
    stall_points: Tuple[Tuple[int, float], ...] = ()
    #: 1-based indices of checkpoint saves that fail before the manifest
    #: rename (shard files written, manifest not updated).
    checkpoint_failures: Tuple[int, ...] = ()
    #: Seqs whose first IPC ship attempt raises a transient error.
    ipc_failures: Tuple[int, ...] = ()
    #: 1-based indices of fleet migrations that crash inside the migration
    #: window — after the donor states are exported, before the new topology
    #: commits.  The rebalancer rolls the attempt back (the source keeps
    #: ownership) and serving continues on the old topology.
    migration_crashes: Tuple[int, ...] = ()
    seed: int = 0

    def __post_init__(self) -> None:
        for seq in self.crash_points:
            if seq < 0:
                raise ConfigurationError(f"crash point must be >= 0, got {seq}")
        for seq, seconds in self.stall_points:
            if seconds < 0.0:
                raise ConfigurationError(
                    f"stall seconds must be >= 0, got {seconds}")
        for index in self.checkpoint_failures:
            if index < 1:
                raise ConfigurationError(
                    f"checkpoint failure index is 1-based, got {index}")
        for index in self.migration_crashes:
            if index < 1:
                raise ConfigurationError(
                    f"migration crash index is 1-based, got {index}")

    @property
    def empty(self) -> bool:
        """Whether this plan injects nothing at all."""
        return not (self.crash_points or self.stall_points
                    or self.checkpoint_failures or self.ipc_failures
                    or self.migration_crashes)

    @classmethod
    def random(cls, *, seed: int, n_points: int, n_crashes: int = 1,
               n_stalls: int = 0, stall_seconds: float = 0.05,
               n_checkpoint_failures: int = 0,
               n_ipc_failures: int = 0) -> "FaultPlan":
        """Draw a reproducible plan over a stream of ``n_points`` points.

        Crash points are kept away from the first sixth of the stream so
        the crashed shard has committed state worth replaying, and away
        from the very last point so recovery happens under traffic.
        """
        if n_points < 4:
            raise ConfigurationError(
                f"need at least 4 points to place faults, got {n_points}")
        rng = random.Random(seed)
        low = max(1, n_points // 6)
        high = max(low + 1, n_points - 2)
        candidates = list(range(low, high))
        n_draws = n_crashes + n_stalls + n_ipc_failures
        if n_draws > len(candidates):
            raise ConfigurationError(
                f"cannot place {n_draws} faults in {len(candidates)} slots")
        drawn = rng.sample(candidates, n_draws)
        crashes = tuple(sorted(drawn[:n_crashes]))
        stalls = tuple(sorted(
            (seq, float(stall_seconds))
            for seq in drawn[n_crashes:n_crashes + n_stalls]))
        ipc = tuple(sorted(drawn[n_crashes + n_stalls:]))
        checkpoints = tuple(range(1, n_checkpoint_failures + 1))
        return cls(crash_points=crashes, stall_points=stalls,
                   checkpoint_failures=checkpoints, ipc_failures=ipc,
                   seed=seed)

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (CLI flags, manifests, cross-process shipping)."""
        return {
            "crash_points": list(self.crash_points),
            "stall_points": [[seq, seconds]
                             for seq, seconds in self.stall_points],
            "checkpoint_failures": list(self.checkpoint_failures),
            "ipc_failures": list(self.ipc_failures),
            "migration_crashes": list(self.migration_crashes),
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "FaultPlan":
        """Inverse of :meth:`to_dict`."""
        return cls(
            crash_points=tuple(int(s) for s in payload.get("crash_points", ())),
            stall_points=tuple(
                (int(seq), float(seconds))
                for seq, seconds in payload.get("stall_points", ())),
            checkpoint_failures=tuple(
                int(i) for i in payload.get("checkpoint_failures", ())),
            ipc_failures=tuple(
                int(s) for s in payload.get("ipc_failures", ())),
            migration_crashes=tuple(
                int(i) for i in payload.get("migration_crashes", ())),
            seed=int(payload.get("seed", 0)),
        )


class FaultInjector:
    """Runtime companion of a :class:`FaultPlan` (thread-safe, fire-once).

    Exact-seq triggers make fire-once semantics mostly automatic — a
    recovered shard never sees a replayed seq as fresh queue traffic — but
    the injector still tracks fired faults so stats report what actually
    happened, and so checkpoint failures (which are counted per save, not
    per seq) fire exactly once each.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._fired_crashes: set = set()
        self._fired_stalls: set = set()
        self._fired_ipc: set = set()
        self._checkpoint_saves = 0
        self._checkpoint_failures = 0
        self._migration_attempts = 0
        self._migration_crashes = 0

    # ------------------------------------------------------------------ #
    # Worker-side triggers (keyed on the seqs of the batch in hand)
    # ------------------------------------------------------------------ #
    def crash_consume(self, seqs: Sequence[int]) -> Optional[int]:
        """If this batch must crash, how many leading points to commit first.

        Returns ``None`` when no crash is scheduled for this batch;
        otherwise the number of items (those preceding the crash point)
        the worker should fold into its detector before dying, so the
        crash tears the batch mid-commit.
        """
        with self._lock:
            for crash_seq in self.plan.crash_points:
                if crash_seq in self._fired_crashes:
                    continue
                if crash_seq in seqs:
                    self._fired_crashes.add(crash_seq)
                    return sum(1 for seq in seqs if seq < crash_seq)
        return None

    def stall_seconds(self, seqs: Sequence[int]) -> float:
        """Total injected stall for this batch (0.0 when none scheduled)."""
        total = 0.0
        with self._lock:
            for stall_seq, seconds in self.plan.stall_points:
                if stall_seq in self._fired_stalls:
                    continue
                if stall_seq in seqs:
                    self._fired_stalls.add(stall_seq)
                    total += seconds
        return total

    def ipc_should_fail(self, seqs: Sequence[int]) -> bool:
        """Whether this batch's first IPC ship attempt must raise."""
        with self._lock:
            for ipc_seq in self.plan.ipc_failures:
                if ipc_seq in self._fired_ipc:
                    continue
                if ipc_seq in seqs:
                    self._fired_ipc.add(ipc_seq)
                    return True
        return False

    # ------------------------------------------------------------------ #
    # Checkpoint-side trigger (counted per save attempt)
    # ------------------------------------------------------------------ #
    def checkpoint_should_fail(self) -> bool:
        """Whether the checkpoint save being attempted right now must fail."""
        with self._lock:
            self._checkpoint_saves += 1
            if self._checkpoint_saves in self.plan.checkpoint_failures:
                self._checkpoint_failures += 1
                return True
        return False

    def migration_should_crash(self) -> bool:
        """Whether the fleet migration being attempted right now must crash.

        Counted per migration attempt (1-based), mirroring the
        checkpoint-save trigger: the n-th ``resize`` call crashes inside its
        migration window when ``n`` is listed in ``migration_crashes``.
        """
        with self._lock:
            self._migration_attempts += 1
            if self._migration_attempts in self.plan.migration_crashes:
                self._migration_crashes += 1
                return True
        return False

    def stats(self) -> Dict[str, int]:
        """How many faults of each kind actually fired."""
        with self._lock:
            stats = {
                "crashes_fired": len(self._fired_crashes),
                "stalls_fired": len(self._fired_stalls),
                "ipc_failures_fired": len(self._fired_ipc),
                "checkpoint_failures_fired": self._checkpoint_failures,
            }
            # Conditional so plans written before the migration fault
            # existed keep their exact committed stats shape (the chaos
            # bench artifact and diag fault logs embed this dict).
            if self.plan.migration_crashes:
                stats["migration_crashes_fired"] = self._migration_crashes
        return stats


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic jitter."""

    attempts: int = 4
    base_delay: float = 0.005
    multiplier: float = 2.0
    max_delay: float = 0.25
    #: Fraction of each delay replaced by a seeded uniform draw, so
    #: concurrent retriers decorrelate without sacrificing reproducibility.
    jitter: float = 0.5

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ConfigurationError(
                f"attempts must be positive, got {self.attempts}")
        if self.base_delay < 0.0 or self.max_delay < 0.0:
            raise ConfigurationError("retry delays must be >= 0")
        if not 0.0 <= self.jitter <= 1.0:
            raise ConfigurationError(
                f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self, seed: int = 0) -> List[float]:
        """The sleep before each retry (``attempts - 1`` entries)."""
        rng = random.Random(seed)
        out = []
        delay = self.base_delay
        for _ in range(self.attempts - 1):
            capped = min(delay, self.max_delay)
            jittered = capped * (1.0 - self.jitter * rng.random())
            out.append(jittered)
            delay *= self.multiplier
        return out


def call_with_retry(fn: Callable[[], object], policy: RetryPolicy, *,
                    retry_on: Tuple[type, ...] = (TransientIPCError, OSError),
                    seed: int = 0,
                    on_retry: Optional[Callable[[int, BaseException], None]]
                    = None) -> object:
    """Run ``fn`` with bounded retry; re-raises after the last attempt.

    ``on_retry(attempt_number, exc)`` fires before each sleep, which is how
    the service counts retries into its robustness stats.
    """
    delays = policy.delays(seed)
    for attempt in range(policy.attempts):
        try:
            return fn()
        except retry_on as exc:
            if attempt >= policy.attempts - 1:
                raise
            if on_retry is not None:
                on_retry(attempt + 1, exc)
            time.sleep(delays[attempt])
    raise AssertionError("unreachable")  # pragma: no cover
