"""Consistent-hash ring routing: elastic shard placement with minimal churn.

The static :class:`~repro.service.router.ShardRouter` maps a stream id to
``crc32(id) % n_shards`` — perfect for a fixed pool, but resizing the pool
remaps almost every key.  The :class:`RingRouter` places ``vnodes`` virtual
nodes per shard on a 32-bit hash ring and assigns each stream id to the
first virtual node at or after its own hash (wrapping around).  Because a
shard's virtual-node positions depend only on ``(salt, shard, replica)``:

* **determinism** — the same ``(n_shards, salt)`` pair always builds the
  same ring, in every process (CRC-32 over UTF-8, never Python's salted
  ``hash``), so a restored service routes exactly like the one that wrote
  the checkpoint;
* **minimal disruption** — growing ``n → n + 1`` only adds the new shard's
  virtual nodes, so the only keys that move are those captured by the new
  shard (≈ ``K/n`` of ``K`` keys in expectation, and *none* move between
  surviving shards); shrinking removes only the retired shards' nodes, so
  keys owned by survivors never move.  This is the property that makes live
  fleet resizing cheap: a 4 → 6 split migrates ~1/3 of the tenants and
  leaves the rest untouched.

Both routers expose the same surface (``n_shards``, ``salt``, ``shard_of``,
``partition``, ``pins``) so the service, the checkpoint manifest and the
parity harness treat them interchangeably; ``ServiceConfig.router`` selects
the kind and :func:`make_router` builds it.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Dict, Iterable, List, TypeVar

from ..core.exceptions import ConfigurationError
from .router import ShardRouter

KeyedT = TypeVar("KeyedT")

#: Router kinds ``ServiceConfig.router`` accepts.
ROUTER_KINDS = ("static", "ring")

#: Virtual nodes per shard.  64 keeps the per-shard load spread within a few
#: percent of uniform while the whole ring for a 64-shard fleet stays a
#: 4096-entry sorted list — one bisect per routed point.
DEFAULT_VNODES = 64


class RingRouter:
    """Consistent-hash ring over ``n_shards`` shards with virtual nodes.

    Parameters
    ----------
    n_shards:
        Number of detector shards on the ring.
    salt:
        Mixed into every hash (virtual-node positions and key lookups);
        persisted in service checkpoints so restored services route
        identically.
    vnodes:
        Virtual nodes per shard; more nodes = smoother load spread at the
        cost of a larger ring.
    """

    kind = "ring"

    def __init__(self, n_shards: int, *, salt: int = 0,
                 vnodes: int = DEFAULT_VNODES) -> None:
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be positive, got {n_shards}")
        if vnodes < 1:
            raise ConfigurationError(
                f"vnodes must be positive, got {vnodes}")
        self.n_shards = n_shards
        self.salt = int(salt)
        self.vnodes = int(vnodes)
        #: Explicit stream-id → shard overrides (live tenant migration);
        #: consulted before the ring, persisted in service checkpoints.
        self.pins: Dict[str, int] = {}
        points = []
        for shard in range(n_shards):
            for replica in range(self.vnodes):
                digest = zlib.crc32(
                    f"{self.salt}:vnode:{shard}:{replica}".encode("utf-8"))
                # The (digest, shard, replica) tuple makes equal-hash
                # collisions deterministic: lower shard ids win, and growth
                # only appends higher ids, so adding shards never reorders
                # the survivors' nodes — the minimal-disruption guarantee
                # holds even across hash ties.
                points.append((digest, shard, replica))
        points.sort()
        self._hashes = [digest for digest, _, _ in points]
        self._owners = [shard for _, shard, _ in points]

    def shard_of(self, stream_id: str) -> int:
        """The shard owning ``stream_id``: its pin, or the next ring node."""
        if self.pins:
            pinned = self.pins.get(stream_id)
            if pinned is not None:
                return pinned
        digest = zlib.crc32(f"{self.salt}:{stream_id}".encode("utf-8"))
        index = bisect.bisect_right(self._hashes, digest)
        if index == len(self._hashes):
            index = 0  # wrap past the top of the ring
        return self._owners[index]

    def partition(self, points: Iterable[KeyedT]) -> Dict[int, List[KeyedT]]:
        """Group stream-id-carrying points by owning shard, preserving order.

        Same contract as :meth:`ShardRouter.partition`: every shard key is
        present (possibly empty), and each per-shard list is exactly the
        sub-stream that shard's detector sees.
        """
        grouped: Dict[int, List[KeyedT]] = {i: [] for i in range(self.n_shards)}
        for point in points:
            grouped[self.shard_of(point.stream_id)].append(point)
        return grouped


def make_router(kind: str, n_shards: int, *, salt: int = 0):
    """Build the router ``ServiceConfig.router`` names.

    ``"static"`` is the historical CRC-32 mod (cheapest, fixed pool);
    ``"ring"`` is the consistent-hash ring (elastic fleets).
    """
    if kind == "static":
        return ShardRouter(n_shards, salt=salt)
    if kind == "ring":
        return RingRouter(n_shards, salt=salt)
    raise ConfigurationError(
        f"router must be one of {ROUTER_KINDS}, got {kind!r}")
