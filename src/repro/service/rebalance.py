"""Live fleet rebalancing: shard split/merge and tenant migration.

The :class:`FleetRebalancer` resizes a *running*
:class:`~repro.service.service.DetectionService` without dropping a
decision.  The protocol, for a grow (``n → m``, a shard split):

1. **Gate** — the service's routing gate closes, so no new point can be
   routed while the topology is in flux.  The gate hold time is the entire
   hot-path cost of the migration (submitters stall, workers don't).
2. **Drain** — every already-routed point is scored and delivered, so the
   fleet sits at one consistent stream position (the *boundary*).
3. **Export** — each new shard's donor exports its detector through the
   zero-copy ``spot-state/v2`` path (``export_state(arrays="copy")``:
   milliseconds, not serialization-bound).
4. **Ship + restore** — the state is rebuilt into a fresh detector
   (``SPOT.from_state``), wired to a fresh micro-batcher and worker, and
   adopted by the supervisor as the new shard's zeroth checkpoint.
5. **Commit** — the router is swapped for one spanning ``m`` shards and the
   gate reopens.  Tenants captured by the new shards continue against a
   detector whose state is *identical* to their old shard's at the
   boundary, so decisions are exactly those of the deterministic spec —
   the parity suite and the ``rebalance`` bench reconstruct this oracle.

A shrink (shard merge) drains the same way, retires the trailing shards
(each has scored everything routed to it — the source keeps ownership of
every point it ever accepted), drops their supervision state, and swaps in
the smaller router; surviving shards are untouched.

A migration-window fault (``FaultPlan.migration_crashes``) fires after the
export, before the commit: the attempt is rolled back, nothing is
installed, the old topology keeps serving, and the report says
``committed=False`` — crash-mid-migration recovery is decision-identical
because ownership never moved.

With ``router="ring"`` the commit moves only the keys the consistent-hash
ring must move (≤ K/n on a grow); with the static router a resize remaps
most keys but remains exactly as correct — every shard's post-boundary
sub-stream is scored by a detector holding the full pre-boundary history.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from ..core.detector import SPOT
from ..core.exceptions import ConfigurationError
from .ring import make_router
from .worker import ShardStats

#: Operations a MigrationReport can describe.
MIGRATION_OPS = ("grow", "shrink", "pin", "noop")


@dataclass(frozen=True)
class MigrationReport:
    """What one rebalancing attempt did (committed or rolled back)."""

    attempt: int
    op: str
    from_shards: int
    to_shards: int
    #: ``points_submitted`` at the migration window — every decision up to
    #: (exclusive) this global seq was made on the old topology, everything
    #: after on the new one.  The parity oracle splits the stream here.
    boundary: int
    #: ``(new_shard, donor_shard)`` pairs on a grow: which live detector
    #: each new shard's state was exported from.
    donors: Tuple[Tuple[int, int], ...] = ()
    #: Shard ids retired on a shrink.
    retired: Tuple[int, ...] = ()
    #: Stream ids explicitly re-pinned (tenant migration).
    moved_streams: Tuple[str, ...] = ()
    committed: bool = True
    #: How long the routing gate was held — the hot-path stall submitters
    #: observed (the bench bounds this against steady-state latency).
    stall_seconds: float = 0.0

    def to_dict(self) -> Dict[str, object]:
        """Plain-data form (bench rows, ``fleet status`` output)."""
        return {
            "attempt": self.attempt,
            "op": self.op,
            "from_shards": self.from_shards,
            "to_shards": self.to_shards,
            "boundary": self.boundary,
            "donors": [list(pair) for pair in self.donors],
            "retired": list(self.retired),
            "moved_streams": list(self.moved_streams),
            "committed": self.committed,
            "stall_ms": round(1e3 * self.stall_seconds, 3),
        }


class FleetRebalancer:
    """Resizes and re-pins a running :class:`DetectionService` in place."""

    def __init__(self, service) -> None:
        self._service = service
        self._attempts = 0
        self._history: List[MigrationReport] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def history(self) -> List[MigrationReport]:
        """Every attempt so far, oldest first (aborted ones included)."""
        return list(self._history)

    def status(self) -> Dict[str, object]:
        """A JSON-ready snapshot of the fleet's routing topology."""
        service = self._service
        return {
            "n_shards": service.config.n_shards,
            "router": service.router.kind,
            "router_salt": service.config.router_salt,
            "pins": dict(service.router.pins),
            "worker_mode": service.config.worker_mode,
            "learning_mode": service.config.learning_mode,
            "points_submitted": service.points_submitted,
            "points_completed": service.points_completed,
            "queued": [len(batcher) for batcher in service._batchers],
            "migrations": [report.to_dict() for report in self._history],
        }

    # ------------------------------------------------------------------ #
    # The migration window
    # ------------------------------------------------------------------ #
    def _require_serving(self) -> None:
        service = self._service
        if not service._started:
            raise ConfigurationError(
                "start() the service before rebalancing it")
        if service._stopped:
            raise ConfigurationError("the service has been stopped")

    def _quiesce(self) -> None:
        """Drain the fleet to one consistent boundary (gate already held)."""
        service = self._service
        service.drain()
        if service._supervisor is not None:
            # Recoveries deliver through the normal completion path, so the
            # drain covered them; quiesce additionally guarantees any worker
            # swap finished before we export or retire anything.
            service._supervisor.quiesce()

    def _record_event(self, kind: str, **data) -> None:
        service = self._service
        if service._record_on:
            service._recorder.record_event(kind, shard=0, **data)
        if service._trace_on:
            service._tracer.event(f"fleet.{kind}", **data)

    def _finish(self, report: MigrationReport) -> MigrationReport:
        self._history.append(report)
        return report

    def resize(self, n_shards: int,
               timeout: Optional[float] = 60.0) -> MigrationReport:
        """Grow or shrink the fleet to ``n_shards``, live.

        Returns the :class:`MigrationReport`; ``committed=False`` means a
        migration-window fault rolled the attempt back and the old topology
        is still serving (nothing was lost — the source kept ownership).
        """
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be positive, got {n_shards}")
        self._require_serving()
        service = self._service
        self._attempts += 1
        attempt = self._attempts
        started = time.perf_counter()
        with service._route_gate:
            old_n = service.config.n_shards
            if n_shards == old_n:
                return self._finish(MigrationReport(
                    attempt=attempt, op="noop", from_shards=old_n,
                    to_shards=old_n, boundary=service.points_submitted,
                    stall_seconds=time.perf_counter() - started))
            op = "grow" if n_shards > old_n else "shrink"
            self._quiesce()
            boundary = service.points_submitted
            self._record_event("migrate-start", op=op, attempt=attempt,
                               from_shards=old_n, to_shards=n_shards,
                               boundary=boundary)
            if op == "grow":
                report = self._grow(attempt, old_n, n_shards, boundary,
                                    timeout)
            else:
                report = self._shrink(attempt, old_n, n_shards, boundary,
                                      timeout)
            if not report.committed:
                return self._finish(replace(
                    report, stall_seconds=time.perf_counter() - started))
            self._swap_router(n_shards)
            self._record_event("migrate-commit", op=op, attempt=attempt,
                               from_shards=old_n, to_shards=n_shards,
                               boundary=boundary)
        return self._finish(replace(
            report, stall_seconds=time.perf_counter() - started))

    def _grow(self, attempt: int, old_n: int, new_n: int, boundary: int,
              timeout: Optional[float]) -> MigrationReport:
        """Split: clone donor shards' drained state onto the new shards."""
        service = self._service
        donors = tuple((shard, shard % old_n)
                       for shard in range(old_n, new_n))
        # Export every donor first: the whole window is all-or-nothing, so
        # a fault mid-export aborts before anything is installed.
        states = [service._workers[donor].export_state()
                  for _, donor in donors]
        if service._faults is not None \
                and service._faults.migration_should_crash():
            self._record_event("migrate-abort", op="grow", attempt=attempt,
                               from_shards=old_n, to_shards=new_n,
                               boundary=boundary)
            return MigrationReport(attempt=attempt, op="grow",
                                   from_shards=old_n, to_shards=old_n,
                                   boundary=boundary, donors=donors,
                                   committed=False)
        new_workers = []
        for (shard_id, _), state in zip(donors, states):
            detector = SPOT.from_state(state)
            if service.config.evidence:
                detector.set_evidence_enabled(True)
            detector.bind_obs(tracer=service._tracer,
                              recorder=service._recorder,
                              registry=service.metrics)
            batcher = service._make_batcher()
            with service._lock:
                service._detectors.append(detector)
                service._batchers.append(batcher)
                service._stats.append(
                    ShardStats(shard_id=shard_id, registry=service.metrics))
            worker = service._build_worker(shard_id, detector, batcher)
            with service._lock:
                service._workers.append(worker)
            if service._supervisor is not None:
                service._supervisor.adopt_shard(shard_id, state)
            new_workers.append(worker)
        for worker in new_workers:
            worker.start()
        return MigrationReport(attempt=attempt, op="grow",
                               from_shards=old_n, to_shards=new_n,
                               boundary=boundary, donors=donors)

    def _shrink(self, attempt: int, old_n: int, new_n: int, boundary: int,
                timeout: Optional[float]) -> MigrationReport:
        """Merge: retire the trailing shards (fully drained, fully owned)."""
        service = self._service
        retired = tuple(range(new_n, old_n))
        if service._faults is not None \
                and service._faults.migration_should_crash():
            self._record_event("migrate-abort", op="shrink", attempt=attempt,
                               from_shards=old_n, to_shards=new_n,
                               boundary=boundary)
            return MigrationReport(attempt=attempt, op="shrink",
                                   from_shards=old_n, to_shards=old_n,
                                   boundary=boundary, retired=retired,
                                   committed=False)
        for shard_id in retired:
            worker = service._workers[shard_id]
            worker.shutdown(timeout=timeout)
            failure = getattr(worker, "failure", None)
            if failure is not None:
                service._record_shard_error(
                    shard_id, f"failed while retiring: "
                    f"{type(failure).__name__}: {failure}")
            if service._supervisor is not None:
                service._supervisor.drop_shard(shard_id)
            if service._coordinator is not None:
                service._coordinator.evict_shard(shard_id)
        with service._lock:
            # The ShardStats counters stay registered in the metrics
            # registry, so fleet totals (stats()["points"], robustness)
            # keep counting what the retired shards served.
            del service._detectors[new_n:]
            del service._batchers[new_n:]
            del service._workers[new_n:]
            del service._stats[new_n:]
        return MigrationReport(attempt=attempt, op="shrink",
                               from_shards=old_n, to_shards=new_n,
                               boundary=boundary, retired=retired)

    def _swap_router(self, n_shards: int) -> None:
        """Install the resized router + config (gate held, fleet drained)."""
        service = self._service
        router = make_router(service.config.router, n_shards,
                             salt=service.config.router_salt)
        # Pins survive a resize unless their target shard was retired.
        router.pins.update({stream: shard for stream, shard
                            in service.router.pins.items()
                            if shard < n_shards})
        service.router = router
        service.config = replace(service.config, n_shards=n_shards)

    # ------------------------------------------------------------------ #
    # Tenant migration (pin one stream to a chosen shard)
    # ------------------------------------------------------------------ #
    def migrate_tenant(self, stream_id: str,
                       target_shard: int) -> MigrationReport:
        """Move one tenant onto ``target_shard``, preserving stream order.

        The fleet drains to a boundary under the routing gate, the pin is
        installed, and the gate reopens: every pre-boundary point of the
        tenant was scored by its old shard (source ownership), every later
        one lands on the target — no point is reordered or dropped, and the
        tenant's SLO window is untouched (SLO tracking is keyed by stream,
        not by shard).  Pins persist through checkpoints.
        """
        self._require_serving()
        service = self._service
        if not 0 <= target_shard < service.config.n_shards:
            raise ConfigurationError(
                f"target shard {target_shard} is not in the fleet "
                f"(0..{service.config.n_shards - 1})")
        self._attempts += 1
        attempt = self._attempts
        started = time.perf_counter()
        with service._route_gate:
            source = service.router.shard_of(stream_id)
            boundary = service.points_submitted
            if source == target_shard:
                return self._finish(MigrationReport(
                    attempt=attempt, op="noop",
                    from_shards=service.config.n_shards,
                    to_shards=service.config.n_shards, boundary=boundary,
                    moved_streams=(stream_id,),
                    stall_seconds=time.perf_counter() - started))
            self._quiesce()
            boundary = service.points_submitted
            self._record_event("migrate-start", op="pin", attempt=attempt,
                               stream=stream_id, source=source,
                               target=target_shard, boundary=boundary)
            if service._faults is not None \
                    and service._faults.migration_should_crash():
                self._record_event("migrate-abort", op="pin",
                                   attempt=attempt, stream=stream_id,
                                   source=source, target=target_shard,
                                   boundary=boundary)
                return self._finish(MigrationReport(
                    attempt=attempt, op="pin",
                    from_shards=service.config.n_shards,
                    to_shards=service.config.n_shards, boundary=boundary,
                    moved_streams=(stream_id,), committed=False,
                    stall_seconds=time.perf_counter() - started))
            service.router.pins[stream_id] = int(target_shard)
            self._record_event("migrate-commit", op="pin", attempt=attempt,
                               stream=stream_id, source=source,
                               target=target_shard, boundary=boundary)
        return self._finish(MigrationReport(
            attempt=attempt, op="pin", from_shards=service.config.n_shards,
            to_shards=service.config.n_shards, boundary=boundary,
            moved_streams=(stream_id,),
            stall_seconds=time.perf_counter() - started))
