"""The sharded detection service facade.

``DetectionService`` multiplexes many independent streams over a pool of
SPOT detector shards::

    submit(stream_id, values)
        │
    ShardRouter ──► MicroBatcher[shard] ──► ShardWorker[shard] ──► results
        │                (coalescing,          (process_batch)
        │                 backpressure)            │
        │                                     ShardSupervisor (crash →
        │                                      restore + replay, optional)
        └────────────── CheckpointManager (periodic full-state snapshots)

Per-stream order is preserved (stable routing + FIFO queues + sequential
workers), so every shard's decisions are exactly those of a single detector
fed that shard's sub-stream — the property the parity tests pin down.  The
whole fleet can be checkpointed at a quiescent point and later restored to
resume decision-identically.

Fault tolerance is opt-in per config: ``supervise=True`` turns worker
failures into supervised restarts (checkpoint restore + journal replay,
decision-identical on surviving traffic), ``deadline`` bounds how stale a
point may get before it is shed or marked degraded, ``full_policy`` bounds
producer waits on a full queue, and ``fault_plan`` injects deterministic
crashes/stalls/IPC failures for testing all of the above.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..core.detector import SPOT
from ..core.exceptions import BackpressureTimeout, ConfigurationError
from ..core.results import DetectionResult
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import NULL_RECORDER, FlightRecorder, build_diag_payload
from ..obs.slo import SLOObjectives, SLOTracker
from ..obs.trace import NULL_TRACER
from ..persist.serialization import clone_detector
from ..streams.tagged import TaggedStreamPoint
from .batcher import FULL_POLICIES, BatchItem, MicroBatcher
from .checkpoint import CheckpointManager
from .faults import FaultInjector, FaultPlan, InjectedFault
from .learning import LearningCoordinator, LearningServiceConfig
from .ring import ROUTER_KINDS, make_router
from .router import ShardRouter
from .supervisor import ShardSupervisor
from .worker import (
    DEADLINE_POLICIES,
    ProcessShardWorker,
    ShardStats,
    ShardWorker,
)

WORKER_MODES = ("thread", "process")
LEARNING_MODES = ("sync", "async")

#: Outcomes a ServiceResult can carry.
RESULT_OUTCOMES = ("ok", "degraded", "shed", "quarantined")


@dataclass(frozen=True)
class ServiceConfig:
    """Tunables of the serving layer (not of the detectors themselves)."""

    n_shards: int = 4
    max_batch: int = 512
    max_delay: float = 0.002
    max_pending: int = 8192
    worker_mode: str = "thread"
    #: ``"static"`` routes with CRC-32 mod over a fixed pool (historical
    #: default); ``"ring"`` routes over a consistent-hash ring with virtual
    #: nodes, so the fleet can grow/shrink with minimal key movement (see
    #: :mod:`repro.service.ring` and :mod:`repro.service.rebalance`).
    router: str = "static"
    router_salt: int = 0
    #: ``"sync"`` keeps online MOGA searches inline in the detection path
    #: (the historical behaviour); ``"async"`` defers them to a shared
    #: :class:`~repro.service.learning.LearningCoordinator` worker pool and
    #: applies the published SSTs at deterministic apply points, so both
    #: modes make identical decisions.
    learning_mode: str = "sync"
    learning_workers: int = 2
    learning_worker_mode: str = "thread"
    #: Take a checkpoint every this many submitted points (0 disables the
    #: periodic trigger; explicit :meth:`DetectionService.checkpoint` calls
    #: always work).  Requires ``checkpoint_dir``.
    checkpoint_every: int = 0
    checkpoint_dir: Optional[str] = None
    #: Fault tolerance.  ``supervise=True`` attaches a
    #: :class:`~repro.service.supervisor.ShardSupervisor`: a crashed shard is
    #: restarted from its latest snapshot and the points committed since are
    #: replayed, decision-identically, instead of poisoning the shard.
    supervise: bool = False
    max_restarts_per_shard: int = 5
    #: Observed scoring failures after which a point is quarantined instead
    #: of retried (supervised mode).
    poison_threshold: int = 3
    #: Per-point detection deadline in seconds (0 disables).  A point older
    #: than this when its batch is picked up is shed (``deadline_policy=
    #: "shed"``) or scored anyway but delivered with a ``"degraded"``
    #: outcome (``"degrade"``).
    deadline: float = 0.0
    deadline_policy: str = "shed"
    #: Producer-side policy when a shard's queue is full: ``"block"``
    #: (historical default), ``"timeout"`` (bounded wait, typed
    #: BackpressureTimeout) or ``"shed"`` (drop at admission).
    full_policy: str = "block"
    put_timeout: Optional[float] = None
    #: Deterministic fault injection (tests, chaos bench); ``None`` in
    #: production.
    fault_plan: Optional[FaultPlan] = None
    #: Span/event tracer (:class:`~repro.obs.trace.Tracer`); ``None`` keeps
    #: the near-zero-cost :data:`~repro.obs.trace.NULL_TRACER`.  The tracer
    #: lives in the parent process only — process shards trace the hand-off,
    #: not the child-side scoring.
    tracer: Optional[object] = None
    #: Decision provenance: enable evidence capture on every shard detector,
    #: so delivered results (and flight-ring records) carry the typed
    #: per-subspace DecisionEvidence behind ``explain``.
    evidence: bool = False
    #: Flight recorder: keep a bounded per-shard ring of recent decisions +
    #: service events (``spot-flight/v1``), snapshot into a ``spot-diag/v1``
    #: bundle on crash or on demand via :meth:`DetectionService.diagnose`.
    flight_recorder: bool = False
    flight_capacity: int = 256
    #: Where crash-time diagnostics bundles are written (``None`` keeps them
    #: in-memory only: ``diagnose()`` still works on demand).
    diag_dir: Optional[str] = None
    #: Per-tenant SLO objectives; ``None`` disables SLO tracking.
    slo: Optional[SLOObjectives] = None

    def __post_init__(self) -> None:
        if self.n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be positive, got {self.n_shards}")
        if self.worker_mode not in WORKER_MODES:
            raise ConfigurationError(
                f"worker_mode must be one of {WORKER_MODES}, "
                f"got {self.worker_mode!r}")
        if self.learning_mode not in LEARNING_MODES:
            raise ConfigurationError(
                f"learning_mode must be one of {LEARNING_MODES}, "
                f"got {self.learning_mode!r}")
        if self.learning_workers < 1:
            raise ConfigurationError("learning_workers must be positive")
        if self.router not in ROUTER_KINDS:
            raise ConfigurationError(
                f"router must be one of {ROUTER_KINDS}, got {self.router!r}")
        if self.checkpoint_every < 0:
            raise ConfigurationError("checkpoint_every must be >= 0")
        if self.checkpoint_every > 0 and not self.checkpoint_dir:
            raise ConfigurationError(
                "checkpoint_every needs checkpoint_dir to be set")
        if self.max_restarts_per_shard < 0:
            raise ConfigurationError("max_restarts_per_shard must be >= 0")
        if self.poison_threshold < 1:
            raise ConfigurationError("poison_threshold must be positive")
        if self.deadline < 0.0:
            raise ConfigurationError(
                f"deadline must be >= 0, got {self.deadline}")
        if self.deadline_policy not in DEADLINE_POLICIES:
            raise ConfigurationError(
                f"deadline_policy must be one of {DEADLINE_POLICIES}, "
                f"got {self.deadline_policy!r}")
        if self.full_policy not in FULL_POLICIES:
            raise ConfigurationError(
                f"full_policy must be one of {FULL_POLICIES}, "
                f"got {self.full_policy!r}")
        if self.full_policy == "timeout" and (
                self.put_timeout is None or self.put_timeout <= 0.0):
            raise ConfigurationError(
                "full_policy='timeout' needs a positive put_timeout")
        if self.flight_capacity < 1:
            raise ConfigurationError(
                f"flight_capacity must be positive, got {self.flight_capacity}")
        if self.slo is not None and not isinstance(self.slo, SLOObjectives):
            raise ConfigurationError(
                "slo must be an SLOObjectives instance or None")

    def learning_config(self) -> LearningServiceConfig:
        """The coordinator configuration this service config implies.

        The snapshot-context cache is keyed per shard, so it scales with the
        fleet: every shard can keep its current reservoir's context warm
        (plus slack for in-flight version turnover) regardless of shard
        count.
        """
        return LearningServiceConfig(
            workers=self.learning_workers,
            worker_mode=self.learning_worker_mode,
            context_cache_size=max(8, self.n_shards + 2))


@dataclass(frozen=True)
class ServiceResult:
    """One processed point, as delivered by the service.

    ``outcome`` is ``"ok"`` for a normally scored point, ``"degraded"``
    for one scored past its deadline (``deadline_policy="degrade"``),
    ``"shed"`` for one dropped past its deadline or at a full queue
    (``result`` is ``None``), and ``"quarantined"`` for a poison point the
    supervisor refused to keep retrying (``result`` is ``None``).
    """

    seq: int
    stream_id: str
    shard: int
    result: Optional[DetectionResult]
    latency_seconds: float
    outcome: str = "ok"

    @property
    def is_outlier(self) -> bool:
        """Whether the detector flagged this point (``False`` when unscored)."""
        return self.result is not None and self.result.is_outlier

    @property
    def scored(self) -> bool:
        """Whether the point was actually scored by a detector."""
        return self.result is not None


class DetectionService:
    """Sharded multi-stream detection over a pool of fitted SPOT detectors.

    Parameters
    ----------
    detectors:
        One *fitted* detector per shard (``len == config.n_shards``).  Use
        :meth:`from_prototype` to replicate a single learned detector across
        shards, or :meth:`restore` to rebuild a fleet from a checkpoint.
    config:
        Serving-layer tunables; see :class:`ServiceConfig`.
    """

    def __init__(self, detectors: Sequence[SPOT],
                 config: Optional[ServiceConfig] = None) -> None:
        self.config = config if config is not None else ServiceConfig()
        if len(detectors) != self.config.n_shards:
            raise ConfigurationError(
                f"need exactly {self.config.n_shards} detectors, "
                f"got {len(detectors)}")
        for i, detector in enumerate(detectors):
            if not detector.is_fitted:
                raise ConfigurationError(
                    f"shard {i} detector has not been fitted (run learn())")
        self._detectors = list(detectors)
        self.router = make_router(self.config.router, self.config.n_shards,
                                  salt=self.config.router_salt)
        #: Per-service instrument registry; every ShardStats counter and the
        #: checkpoint counters below live here, so ``metrics_snapshot()``
        #: and ``stats()`` are two views of the same numbers.
        self.metrics = MetricsRegistry()
        self._tracer = self.config.tracer if self.config.tracer is not None \
            else NULL_TRACER
        self._trace_on = bool(getattr(self._tracer, "enabled", False))
        self._batchers: List[MicroBatcher] = []
        self._workers: List[Union[ShardWorker, ProcessShardWorker]] = []
        self._stats = [ShardStats(shard_id=i, registry=self.metrics)
                       for i in range(self.config.n_shards)]
        self._results: List[ServiceResult] = []
        #: Routing gate: ``submit()`` holds it across route → seq → enqueue,
        #: and the rebalancer holds it exclusively while it swaps the router
        #: and the shard registries.  Separate from ``_lock`` so result
        #: delivery never waits behind a migration, and the migration's
        #: hot-path cost is exactly the gate hold time.
        self._route_gate = threading.RLock()
        self._lock = threading.Lock()
        self._all_done = threading.Condition(self._lock)
        self._submitted = 0
        self._completed = 0
        self._errors: List[str] = []
        self._started = False
        self._stopped = False
        self._started_at: Optional[float] = None
        self._ckpt_taken = self.metrics.counter("service.checkpoints_taken")
        self._ckpt_write_failures = self.metrics.counter(
            "service.checkpoint_write_failures")
        self._points_at_last_checkpoint = 0
        self._checkpoint_extra: Dict[str, object] = {}
        self._coordinator: Optional[LearningCoordinator] = None
        self._supervisor: Optional[ShardSupervisor] = None
        self._faults: Optional[FaultInjector] = \
            FaultInjector(self.config.fault_plan) \
            if self.config.fault_plan is not None \
            and not self.config.fault_plan.empty else None
        #: Flight recorder (NULL_RECORDER when off: one boolean per point).
        self._recorder = (FlightRecorder(self.config.flight_capacity,
                                         n_shards=self.config.n_shards)
                          if self.config.flight_recorder else NULL_RECORDER)
        self._record_on = bool(self._recorder.enabled)
        self._slo = (SLOTracker(self.config.slo, registry=self.metrics)
                     if self.config.slo is not None else None)
        self._diag_seq = 0
        #: The most recent crash-time diagnostics bundle (spot-diag/v1).
        self.last_diagnostics: Optional[Dict[str, object]] = None
        if self.config.evidence:
            for detector in self._detectors:
                detector.set_evidence_enabled(True)
        for detector in self._detectors:
            detector.bind_obs(tracer=self._tracer, recorder=self._recorder,
                              registry=self.metrics)

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_prototype(cls, prototype: SPOT,
                       config: Optional[ServiceConfig] = None
                       ) -> "DetectionService":
        """Replicate one learned detector across every shard.

        Cloning goes through the full-state checkpoint path, so each shard
        starts from the identical learned template *and* warm summaries
        without re-running the learning stage per shard.
        """
        config = config if config is not None else ServiceConfig()
        detectors = [clone_detector(prototype)
                     for _ in range(config.n_shards)]
        return cls(detectors, config)

    @classmethod
    def restore(cls, directory, *,
                config: Optional[ServiceConfig] = None) -> "DetectionService":
        """Rebuild a service from a :meth:`checkpoint` directory.

        Shard count and router salt always come from the manifest (changing
        either would re-route streams away from the summaries that know
        them); the remaining serving tunables may be overridden via
        ``config``.  Restoration is corruption-tolerant: when the latest
        checkpoint generation is truncated or malformed on disk, the
        previous good generation is loaded instead (see
        :meth:`CheckpointManager.load_fleet`).
        """
        manager = CheckpointManager(directory)
        base = config if config is not None else ServiceConfig()
        tracer = base.tracer if base.tracer is not None else NULL_TRACER
        with tracer.span("checkpoint.load") as span:
            manifest, detectors = manager.load_fleet()
            span.annotate(at_point=int(manifest["points_submitted"]),
                          shards=int(manifest["n_shards"]))
        merged = replace(base, n_shards=int(manifest["n_shards"]),
                         router_salt=int(manifest["router_salt"]),
                         router=str(manifest.get("router", "static")))
        service = cls(detectors, merged)
        service.router.pins.update(
            {str(stream): int(shard) for stream, shard
             in (manifest.get("router_pins") or {}).items()})
        service._submitted = int(manifest["points_submitted"])
        service._completed = service._submitted
        service._points_at_last_checkpoint = service._submitted
        return service

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "DetectionService":
        """Spin up the per-shard queues, workers and (async) the coordinator."""
        if self._started:
            raise ConfigurationError("the service is already started")
        if self._stopped:
            raise ConfigurationError("a stopped service cannot be restarted")
        if self.config.learning_mode == "async":
            self._coordinator = LearningCoordinator(
                self.config.learning_config(),
                tracer=self._tracer).start()
        if self.config.supervise:
            self._supervisor = ShardSupervisor(
                self,
                max_restarts_per_shard=self.config.max_restarts_per_shard,
                poison_threshold=self.config.poison_threshold).start()
            # The shards' starting states are the zeroth "checkpoint": a
            # crash before the first on-disk save replays from here.
            # "copy" arrays: the supervisor retains these snapshots while
            # the live stores keep mutating, so they must not alias them.
            self._supervisor.install_snapshots(
                [detector.export_state(arrays="copy")
                 for detector in self._detectors])
        for shard_id, detector in enumerate(self._detectors):
            batcher = self._make_batcher()
            worker = self._build_worker(shard_id, detector, batcher)
            self._batchers.append(batcher)
            self._workers.append(worker)
        for worker in self._workers:
            worker.start()
        self._started = True
        self._started_at = time.monotonic()
        return self

    def _make_batcher(self) -> MicroBatcher:
        return MicroBatcher(max_batch=self.config.max_batch,
                            max_delay=self.config.max_delay,
                            max_pending=self.config.max_pending,
                            full_policy=self.config.full_policy,
                            put_timeout=self.config.put_timeout)

    def _build_worker(self, shard_id: int, detector: SPOT,
                      batcher: MicroBatcher
                      ) -> Union[ShardWorker, ProcessShardWorker]:
        """Wire one worker (initial start and supervised replacement)."""
        if self.config.worker_mode == "thread":
            # The mode is a serving decision, not detector state: a fleet
            # restored from an async checkpoint serves sync-ly (and vice
            # versa) without any decision changing.
            detector.set_deferred_learning(
                self.config.learning_mode == "async")
            return ShardWorker(shard_id, detector, batcher,
                               self._on_results,
                               learning=self._coordinator,
                               faults=self._faults,
                               deadline=self.config.deadline,
                               deadline_policy=self.config.deadline_policy,
                               quarantine_on_failure=not self.config.supervise,
                               tracer=self._tracer,
                               recorder=self._recorder)
        return ProcessShardWorker(shard_id, detector, batcher,
                                  self._on_results,
                                  learning=self._coordinator,
                                  fault_plan=self.config.fault_plan,
                                  faults=self._faults,
                                  deadline=self.config.deadline,
                                  deadline_policy=self.config.deadline_policy,
                                  quarantine_on_failure=not self.config.supervise,
                                  on_ipc_retry=self._note_ipc_retry,
                                  tracer=self._tracer,
                                  recorder=self._recorder)

    def stop(self, timeout: Optional[float] = 60.0) -> None:
        """Drain every queue, stop every worker, surface any failure."""
        if not self._started or self._stopped:
            return
        if self._supervisor is not None:
            # Finish in-flight recoveries first so the worker registry is
            # stable; crashes during the final drain below surface as plain
            # errors (the supervisor no longer accepts events).
            self._supervisor.shutdown(timeout=timeout)
        for worker in self._workers:
            worker.shutdown(timeout=timeout)
        for shard_id, worker in enumerate(self._workers):
            # A failure in the shutdown path (e.g. resolving a final learn
            # publication) never went through on_results; surface it here.
            failure = getattr(worker, "failure", None)
            if failure is not None and not any(
                    error.startswith(f"shard {shard_id}:")
                    for error in self._errors):
                self._errors.append(
                    f"shard {shard_id}: {type(failure).__name__}: {failure}")
        if self._coordinator is not None:
            self._coordinator.stop()
        self._stopped = True
        self._raise_on_error()

    def __enter__(self) -> "DetectionService":
        return self.start() if not self._started else self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def submit(self, stream_id: str, values: Sequence[float]) -> int:
        """Route one point to its shard; returns its global sequence number.

        A full shard queue engages the configured ``full_policy``: block
        (default), bounded wait raising
        :class:`~repro.core.exceptions.BackpressureTimeout`, or admission
        shedding (the point completes immediately with a ``"shed"``
        outcome).  When periodic checkpointing is configured, crossing the
        ``checkpoint_every`` threshold quiesces the service and snapshots
        every shard before the point is enqueued.
        """
        if not self._started:
            raise ConfigurationError("start() the service before submitting")
        if self._stopped:
            raise ConfigurationError("the service has been stopped")
        if (self.config.checkpoint_every > 0
                and self._submitted - self._points_at_last_checkpoint
                >= self.config.checkpoint_every):
            self.checkpoint()
        with self._route_gate:
            shard = self.router.shard_of(stream_id)
            with self._lock:
                seq = self._submitted
                self._submitted += 1
            item = BatchItem(seq=seq, stream_id=stream_id,
                             values=tuple(float(v) for v in values),
                             enqueued_at=time.monotonic())
            if self._trace_on:
                self._tracer.event("enqueue", seq=seq, shard=shard,
                                   stream=stream_id)
            try:
                accepted = self._batchers[shard].put(item)
            except BackpressureTimeout:
                # The point was never enqueued; complete it as shed so the
                # accounting stays consistent (drain() must not wait for
                # it), then surface the bounded-wait failure to the caller.
                self._on_results(shard, [item], None, 0.0, None, shed=True)
                raise
        if not accepted:  # full_policy="shed": admission-shed the point
            self._on_results(shard, [item], None, 0.0, None, shed=True)
        return seq

    def submit_tagged(self, points: Iterable[TaggedStreamPoint]) -> int:
        """Submit a sequence of tagged points; returns how many were accepted."""
        n = 0
        for point in points:
            self.submit(point.stream_id, point.values)
            n += 1
        return n

    def drain(self, timeout: Optional[float] = None) -> None:
        """Block until every submitted point has been processed.

        Under supervision a crash does not fail the drain: the wait simply
        covers the recovery, and completes once the replayed points are
        delivered.  Only an unrecoverable failure (restart budget exhausted,
        replay failure) raises.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._all_done:
            while self._completed < self._submitted and not self._errors:
                remaining = None if deadline is None \
                    else deadline - time.monotonic()
                if remaining is not None and remaining <= 0.0:
                    raise ConfigurationError(
                        f"drain timed out with "
                        f"{self._submitted - self._completed} points in flight")
                self._all_done.wait(timeout=0.1 if remaining is None
                                    else min(0.1, remaining))
        self._raise_on_error()

    # ------------------------------------------------------------------ #
    # Results / stats
    # ------------------------------------------------------------------ #
    def _on_results(self, shard_id: int, items: List[BatchItem],
                    results: Optional[List[DetectionResult]],
                    busy_seconds: float, error: Optional[str], *,
                    shed: bool = False) -> None:
        now = time.monotonic()
        if error is not None and self._supervisor is not None \
                and self._supervisor.submit_failure(shard_id, items, error):
            # Supervised recovery owns these points now: they stay in
            # flight (not completed, no error recorded) until the replay
            # delivers them — or recovery itself gives up and records a
            # shard error.
            with self._lock:
                stats = self._stats[shard_id]
                stats.batches.inc()
                stats.busy_seconds.inc(busy_seconds)
                stats.errors.inc()
            if self._trace_on:
                self._tracer.event("shard.crash", shard=shard_id,
                                   seq_first=items[0].seq if items else -1,
                                   n=len(items))
            if self._record_on:
                self._recorder.record_event(
                    "crash", shard=shard_id, error=str(error),
                    seq_first=items[0].seq if items else -1, n=len(items))
            return
        degrade = (self.config.deadline > 0.0
                   and self.config.deadline_policy == "degrade")
        with self._all_done:
            stats = self._stats[shard_id]
            if shed:
                stats.shed_points.inc(len(items))
                for item in items:
                    self._results.append(ServiceResult(
                        seq=item.seq, stream_id=item.stream_id,
                        shard=shard_id, result=None,
                        latency_seconds=now - item.enqueued_at,
                        outcome="shed"))
                    if self._slo is not None:
                        self._slo.observe_shed(item.stream_id)
                if self._trace_on:
                    self._tracer.event("shard.shed", shard=shard_id,
                                       seq_first=items[0].seq,
                                       n=len(items))
                if self._record_on:
                    self._recorder.record_event(
                        "shed", shard=shard_id, seq_first=items[0].seq,
                        n=len(items))
            elif error is not None:
                stats.batches.inc()
                stats.busy_seconds.inc(busy_seconds)
                stats.errors.inc()
                self._errors.append(f"shard {shard_id}: {error}")
            else:
                assert results is not None
                stats.batches.inc()
                stats.busy_seconds.inc(busy_seconds)
                stats.points.inc(len(items))
                degraded = 0
                for item, result in zip(items, results):
                    latency = now - item.enqueued_at
                    stats.latency.record(latency)
                    # Every point of the call shares its detection-path cost:
                    # a point waits for its batch-mates (and, in sync
                    # learning mode, for any inline MOGA searches the call
                    # ran) before its result exists.
                    stats.path_latency.record(busy_seconds)
                    outcome = "ok"
                    if degrade and latency > self.config.deadline:
                        outcome = "degraded"
                        degraded += 1
                    self._results.append(ServiceResult(
                        seq=item.seq,
                        stream_id=item.stream_id,
                        shard=shard_id,
                        result=result,
                        latency_seconds=latency,
                        outcome=outcome,
                    ))
                    if self._record_on:
                        self._recorder.record_decision(
                            shard_id, item.seq, item.stream_id, outcome,
                            result)
                    if self._slo is not None:
                        self._slo.observe_delivery(item.stream_id, latency,
                                                   outcome)
                if degraded:
                    stats.degraded_points.inc(degraded)
                    if self._record_on:
                        self._recorder.record_event("degrade",
                                                    shard=shard_id,
                                                    n=degraded)
                if self._trace_on:
                    self._tracer.event("shard.commit", shard=shard_id,
                                       seq_first=items[0].seq,
                                       seq_last=items[-1].seq,
                                       n=len(items))
                if self._supervisor is not None:
                    # Journal the committed points: a later crash replays
                    # them from the last snapshot to rebuild this state.
                    self._supervisor.record_committed(shard_id, items)
            self._completed += len(items)
            if self._completed >= self._submitted or self._errors:
                self._all_done.notify_all()

    def _deliver_quarantined(self, shard_id: int,
                             items: List[BatchItem]) -> None:
        """Complete poison points with a ``"quarantined"`` outcome."""
        now = time.monotonic()
        if self._trace_on and items:
            self._tracer.event("shard.quarantine", shard=shard_id,
                               seq_first=items[0].seq, n=len(items))
        if self._record_on and items:
            self._recorder.record_event("quarantine", shard=shard_id,
                                        seq_first=items[0].seq,
                                        n=len(items))
        with self._all_done:
            stats = self._stats[shard_id]
            stats.quarantined_points.inc(len(items))
            for item in items:
                self._results.append(ServiceResult(
                    seq=item.seq, stream_id=item.stream_id, shard=shard_id,
                    result=None, latency_seconds=now - item.enqueued_at,
                    outcome="quarantined"))
                if self._slo is not None:
                    self._slo.observe_quarantined(item.stream_id)
            self._completed += len(items)
            if self._completed >= self._submitted or self._errors:
                self._all_done.notify_all()

    def _record_shard_error(self, shard_id: int, message: str) -> None:
        """Surface an unrecoverable shard failure (wakes any drain())."""
        with self._all_done:
            self._errors.append(f"shard {shard_id}: {message}")
            self._all_done.notify_all()

    def _install_replacement(self, shard_id: int, detector: SPOT) -> None:
        """Swap a recovered detector + fresh worker into the registry."""
        if self._coordinator is not None:
            # The dead worker's snapshot contexts are stale; drop them so
            # the restarted shard's searches build from its own snapshots.
            self._coordinator.evict_shard(shard_id)
        batcher = self._batchers[shard_id]
        detector.bind_obs(tracer=self._tracer, recorder=self._recorder,
                          registry=self.metrics)
        worker = self._build_worker(shard_id, detector, batcher)
        with self._lock:
            self._detectors[shard_id] = detector
            self._workers[shard_id] = worker
        if self._record_on:
            self._recorder.record_event("restart", shard=shard_id)
        worker.start()

    def _note_ipc_retry(self, shard_id: int) -> None:
        with self._lock:
            self._stats[shard_id].ipc_retries.inc()
        if self._trace_on:
            self._tracer.event("ipc.retry", shard=shard_id,
                               attempt=int(self._stats[shard_id]
                                           .ipc_retries.value))

    def _raise_on_error(self) -> None:
        if self._errors:
            raise ConfigurationError(
                "service worker failure: " + "; ".join(self._errors))

    def results(self) -> List[ServiceResult]:
        """Every completed point so far, in global submission order.

        Includes shed and quarantined points (``result is None``); filter
        on :attr:`ServiceResult.scored` for detector decisions only.
        """
        with self._lock:
            return sorted(self._results, key=lambda r: r.seq)

    def results_for(self, stream_id: str) -> List[ServiceResult]:
        """The processed points of one stream, in that stream's order."""
        return [r for r in self.results() if r.stream_id == stream_id]

    @property
    def points_submitted(self) -> int:
        """Points accepted by :meth:`submit` so far (including restored offset)."""
        with self._lock:
            return self._submitted

    @property
    def points_completed(self) -> int:
        """Points fully processed so far."""
        with self._lock:
            return self._completed

    @property
    def checkpoints_taken(self) -> int:
        """Number of checkpoints written by this service instance."""
        return int(self._ckpt_taken.value)

    @property
    def tracer(self):
        """The service's tracer (:data:`NULL_TRACER` unless configured)."""
        return self._tracer

    def shard_stats(self) -> List[ShardStats]:
        """Per-shard serving statistics (live objects; read-only use)."""
        return list(self._stats)

    def shard_detectors(self) -> Tuple[SPOT, ...]:
        """The per-shard detectors (thread mode; read-only diagnostics).

        Parity tests compare these against reference detectors; with
        ``worker_mode="process"`` the live state lives in the children and
        this returns the prototypes the service was built from.
        """
        return tuple(self._detectors)

    @property
    def learning_coordinator(self) -> Optional[LearningCoordinator]:
        """The shared learning coordinator (``None`` in sync mode)."""
        return self._coordinator

    @property
    def supervisor(self) -> Optional[ShardSupervisor]:
        """The shard supervisor (``None`` unless ``supervise=True``)."""
        return self._supervisor

    def latency_summary(self) -> Dict[str, float]:
        """Fleet-wide delivered- and detection-path-latency percentiles.

        Merges every shard's per-point series: ``latency_*`` is
        enqueue-to-result (what a client sees), ``path_*`` is the time the
        scoring call itself held the point (what the detection path costs —
        the number deferred learning exists to shrink).
        """
        from ..metrics.throughput import LatencySeries

        delivered = LatencySeries()
        path = LatencySeries()
        with self._lock:
            for stats in self._stats:
                delivered.merge(stats.latency)
                path.merge(stats.path_latency)
        summary = {}
        for prefix, series in (("latency", delivered), ("path", path)):
            for q in (50, 95, 99):
                summary[f"{prefix}_p{q}_ms"] = round(
                    1e3 * series.percentile(float(q)), 3)
            summary[f"{prefix}_mean_ms"] = round(1e3 * series.mean(), 3)
        return summary

    def stats(self) -> Dict[str, object]:
        """Aggregate + per-shard serving statistics.

        The totals (and the whole robustness block) are read from the
        metrics registry — :meth:`metrics_snapshot` and this dict are two
        views of the same counters, so they can never disagree about a
        restart or a shed point.
        """
        with self._lock:
            per_shard = [stats.as_dict() for stats in self._stats]
            total_points = int(self.metrics.total("service.points"))
            busy = self.metrics.total("service.busy_seconds")
            wall = (time.monotonic() - self._started_at
                    if self._started_at is not None else 0.0)
            batcher_stats = [batcher.stats() for batcher in self._batchers]
            slo_report = self._slo.report() if self._slo is not None else None
            robustness = {
                "supervised": self.config.supervise,
                "restarts": int(self.metrics.total("service.restarts")),
                "recovery_ms": round(
                    1e3 * self.metrics.total("service.recovery_seconds"), 1),
                "shed_points": int(
                    self.metrics.total("service.shed_points")),
                "degraded_points": int(
                    self.metrics.total("service.degraded_points")),
                "quarantined_points": int(
                    self.metrics.total("service.quarantined_points")),
                "ipc_retries": int(
                    self.metrics.total("service.ipc_retries")),
                "checkpoint_write_failures":
                    int(self._ckpt_write_failures.value),
                "faults_fired": (self._faults.stats()
                                 if self._faults is not None else None),
            }
        return {
            "n_shards": self.config.n_shards,
            "worker_mode": self.config.worker_mode,
            "points": total_points,
            "wall_seconds": round(wall, 4),
            "busy_seconds": round(busy, 4),
            "aggregate_points_per_second": round(total_points / wall, 1)
            if wall > 0 else 0.0,
            "mean_batch_size": round(
                sum(b["points_emitted"] for b in batcher_stats)
                / max(1.0, sum(b["batches_emitted"] for b in batcher_stats)),
                1),
            "producer_blocks": int(sum(b["producer_blocks"]
                                       for b in batcher_stats)),
            "checkpoints_taken": int(self._ckpt_taken.value),
            "learning_mode": self.config.learning_mode,
            "learning": (self._coordinator.stats()
                         if self._coordinator is not None else None),
            "robustness": robustness,
            "slo": slo_report,
            "shards": per_shard,
        }

    def metrics_snapshot(self) -> Dict[str, object]:
        """Stable ``spot-metrics/v1`` snapshot of the service's registry.

        Control-flow state that is not counter-shaped (submission progress,
        wall-clock age) is sampled into gauges at snapshot time.
        """
        with self._lock:
            self.metrics.gauge("service.points_submitted").set(
                self._submitted)
            self.metrics.gauge("service.points_completed").set(
                self._completed)
            self.metrics.gauge("service.n_shards").set(self.config.n_shards)
            wall = (time.monotonic() - self._started_at
                    if self._started_at is not None else 0.0)
            self.metrics.gauge("service.wall_seconds").set(round(wall, 4))
        return self.metrics.snapshot()

    # ------------------------------------------------------------------ #
    # Diagnostics (flight recorder / SLOs)
    # ------------------------------------------------------------------ #
    @property
    def flight_recorder(self):
        """The flight recorder (:data:`NULL_RECORDER` unless configured)."""
        return self._recorder

    def slo_report(self) -> Optional[Dict[str, object]]:
        """The ``spot-slo/v1`` per-tenant report (``None`` when untracked)."""
        with self._lock:
            return self._slo.report() if self._slo is not None else None

    def _diag_config_summary(self) -> Dict[str, object]:
        config = self.config
        return {
            "n_shards": config.n_shards,
            "worker_mode": config.worker_mode,
            "learning_mode": config.learning_mode,
            "supervise": config.supervise,
            "deadline": config.deadline,
            "deadline_policy": config.deadline_policy,
            "full_policy": config.full_policy,
            "evidence": config.evidence,
            "flight_recorder": config.flight_recorder,
            "flight_capacity": config.flight_capacity,
            "slo": (config.slo.to_dict() if config.slo is not None
                    else None),
        }

    def diagnose(self, reason: str = "on-demand",
                 shard: Optional[int] = None) -> Dict[str, object]:
        """Assemble a ``spot-diag/v1`` diagnostics bundle.

        Snapshots everything an incident review needs — metrics, trace,
        flight rings, config, fault log, git provenance, SLO report — as
        one self-contained payload.  The supervisor calls this (via
        :meth:`_emit_crash_diagnostics`) when a shard crashes; operators
        call it on demand through the ``diag`` CLI verb.
        """
        # Function-level import: eval.experiments imports the service layer,
        # so a module-level import here would be a cycle.
        from ..eval.spec import bench_stamp

        with self._lock:
            faults = (self._faults.stats()
                      if self._faults is not None else {})
            slo = self._slo.report() if self._slo is not None else None
        fault_log = [f"{key}={faults[key]}" for key in sorted(faults)] \
            if isinstance(faults, dict) else [str(faults)]
        return build_diag_payload(
            reason=reason,
            shard=shard,
            provenance=bench_stamp(warn=False),
            config=self._diag_config_summary(),
            metrics=self.metrics_snapshot(),
            trace=self._tracer.to_dict(),
            flight=self._recorder.to_dict(),
            faults=fault_log,
            slo=slo,
        )

    def _emit_crash_diagnostics(self, shard_id: int,
                                error: str) -> Optional[str]:
        """Snapshot a crash-time diagnostics bundle (supervisor hook).

        Called on the supervisor thread *before* replay mutates anything,
        so the flight ring still shows the decisions committed right up to
        the crash.  The bundle is kept on the service (``last_diagnostics``)
        and, when ``diag_dir`` is configured, written to
        ``diag-<n>-shard<id>.json``; returns the path written (or ``None``).
        """
        if not self._record_on:
            return None
        payload = self.diagnose(reason=f"crash: {error}", shard=shard_id)
        self.last_diagnostics = payload
        if not self.config.diag_dir:
            return None
        import json
        import os

        os.makedirs(self.config.diag_dir, exist_ok=True)
        with self._lock:
            self._diag_seq += 1
            seq = self._diag_seq
        path = os.path.join(self.config.diag_dir,
                            f"diag-{seq}-shard{shard_id}.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
        return path

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def set_checkpoint_extra(self, extra: Dict[str, object]) -> None:
        """Attach metadata to every checkpoint this service writes.

        Periodic checkpoints (``checkpoint_every``) carry this by default,
        so a crash-recovery checkpoint is as self-describing as an explicit
        one — the CLI records its workload parameters here, which is what
        makes any checkpoint of a ``serve`` run replayable.
        """
        self._checkpoint_extra = dict(extra)

    def checkpoint(self, directory=None,
                   extra: Optional[Dict[str, object]] = None):
        """Quiesce the service and snapshot every shard; returns the directory.

        The service is drained first so the snapshot describes one consistent
        stream position; submission resumes as soon as the states are
        captured.  ``extra`` overrides the persistent metadata installed via
        :meth:`set_checkpoint_extra` for this save only.

        A write failure injected by the fault plan is absorbed: the save is
        counted as failed, the previous on-disk checkpoint stays the latest
        good one, the supervisor keeps its old snapshot + journal, and
        ``None`` is returned; serving continues.
        """
        target = directory if directory is not None \
            else self.config.checkpoint_dir
        if target is None:
            raise ConfigurationError(
                "no checkpoint directory configured or given")
        self.drain()
        if self._supervisor is not None:
            # Recoveries deliver through the normal completion path, so
            # drain() above already covered them; quiesce() additionally
            # guarantees the worker swap itself finished before we export.
            self._supervisor.quiesce()
        with self._tracer.span("checkpoint.write",
                               at_point=self.points_submitted,
                               shards=self.config.n_shards) as span:
            states = [worker.export_state() for worker in self._workers]
            manager = CheckpointManager(target)
            inject_failure = (self._faults is not None
                              and self._faults.checkpoint_should_fail())
            try:
                path = manager.save(states,
                                    router_salt=self.config.router_salt,
                                    router=self.config.router,
                                    router_pins=dict(self.router.pins),
                                    points_submitted=self.points_submitted,
                                    extra=extra if extra is not None
                                    else self._checkpoint_extra,
                                    fail_before_manifest=inject_failure)
            except InjectedFault:
                span.annotate(outcome="write_failed")
                with self._lock:
                    self._ckpt_write_failures.inc()
                    # Deliberately *not* advancing
                    # _points_at_last_checkpoint: the periodic trigger
                    # retries on the next submit.
                return None
            span.annotate(outcome="saved")
        if self._supervisor is not None:
            self._supervisor.install_snapshots(states)
        if self._record_on:
            self._recorder.record_event("checkpoint",
                                        at_point=self.points_submitted)
        with self._lock:
            self._ckpt_taken.inc()
            self._points_at_last_checkpoint = self._submitted
        return path
