"""Shard workers: drive one detector shard off its micro-batch queue.

Two interchangeable flavours:

* :class:`ShardWorker` — a daemon thread owning its detector in-process.
  The default: zero serialisation cost, shared memory, and (because NumPy
  releases the GIL inside large array ops) some overlap between shards.
* :class:`ProcessShardWorker` — one OS process per shard, fed through
  multiprocessing queues.  The detector is shipped to the child as a
  full-state checkpoint payload and re-materialised there, so the flavour is
  exactly as resumable as the thread one.  Worth it on multi-core hosts
  where the GIL would otherwise serialise the shards.

Both expose the same surface to the service: ``start()``, ``shutdown()``,
``export_state()`` and a ``failure`` attribute, and both deliver every
processed batch through the service's ``on_results`` callback:

    on_results(shard_id, items, results, busy_seconds, error, shed=False)

with ``results`` a list of :class:`~repro.core.results.DetectionResult`
aligned with ``items`` (or ``None`` when ``error`` is set, or when
``shed=True`` marks points dropped past their detection deadline).

Failure semantics are a policy of the owner: standalone (the historical
default, ``quarantine_on_failure=True``) a failed shard rejects every later
batch so nothing is scored against a possibly half-updated store; under a
:class:`~repro.service.supervisor.ShardSupervisor`
(``quarantine_on_failure=False``) the worker *retires* instead — it stops
consuming, hands any batch it already popped back to the queue, and leaves
the backlog for the replacement worker the supervisor builds from the last
checkpoint.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional

from ..core.detector import SPOT
from ..core.exceptions import ConfigurationError
from ..metrics.throughput import LatencySeries
from ..obs.metrics import MetricsRegistry
from ..obs.recorder import NULL_RECORDER
from ..obs.trace import NULL_TRACER
from .batcher import BatchItem, MicroBatcher
from .faults import (
    FaultInjector,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    TransientIPCError,
    call_with_retry,
)
from ..learning.requests import request_from_dict
from .learning import LearningCoordinator, LearnTicket

ResultsCallback = Callable[..., None]

DEADLINE_POLICIES = ("shed", "degrade")


#: Counter names a ShardStats registers, in reporting order.  The
#: robustness block of :meth:`DetectionService.stats` is built from the
#: registry totals of the tail entries, so the names are part of the
#: ``spot-metrics/v1`` surface.
SHARD_COUNTERS = ("points", "batches", "busy_seconds", "errors",
                  "shed_points", "degraded_points", "quarantined_points",
                  "ipc_retries", "restarts", "recovery_seconds")


class ShardStats:
    """Serving statistics of one shard (maintained by the service).

    Every field is a registry-backed instrument (``service.<name>`` with a
    ``shard`` label), so a metrics snapshot and this object can never
    disagree.  Mutation sites call ``.inc()`` under the service lock — the
    same discipline the plain ``+=`` fields historically relied on.  The two
    latency series keep their :class:`LatencySeries` type (now bounded) and
    register their backing histograms under ``service.latency_seconds`` /
    ``service.path_seconds``.
    """

    def __init__(self, shard_id: int,
                 registry: Optional[MetricsRegistry] = None) -> None:
        registry = registry if registry is not None else MetricsRegistry()
        self.registry = registry
        self.shard_id = shard_id
        self.points = registry.counter("service.points", shard=shard_id)
        self.batches = registry.counter("service.batches", shard=shard_id)
        self.busy_seconds = registry.counter("service.busy_seconds",
                                             shard=shard_id)
        self.errors = registry.counter("service.errors", shard=shard_id)
        #: Robustness counters (see the fault-tolerance layer): points
        #: dropped past their deadline, points scored late under the
        #: "degrade" policy, poison points skipped by the supervisor, IPC
        #: retries that eventually succeeded, worker restarts, and the total
        #: time spent recovering.
        self.shed_points = registry.counter("service.shed_points",
                                            shard=shard_id)
        self.degraded_points = registry.counter("service.degraded_points",
                                                shard=shard_id)
        self.quarantined_points = registry.counter(
            "service.quarantined_points", shard=shard_id)
        self.ipc_retries = registry.counter("service.ipc_retries",
                                            shard=shard_id)
        self.restarts = registry.counter("service.restarts", shard=shard_id)
        self.recovery_seconds = registry.counter("service.recovery_seconds",
                                                 shard=shard_id)
        self.latency = LatencySeries()
        #: Detection-path latency: the time the ``process_batch`` call that
        #: scored a point spent on the detection path (one sample per
        #: point).  Inline learning charges its MOGA searches here; deferred
        #: learning moves them to the coordinator, which is exactly what the
        #: L2 benchmark measures.
        self.path_latency = LatencySeries()
        registry.register_histogram("service.latency_seconds",
                                    self.latency.histogram, shard=shard_id)
        registry.register_histogram("service.path_seconds",
                                    self.path_latency.histogram,
                                    shard=shard_id)

    @property
    def points_per_second(self) -> float:
        """Throughput over the shard's *busy* time (excludes idle waits)."""
        if self.busy_seconds.value <= 0.0:
            return 0.0
        return self.points.value / self.busy_seconds.value

    @property
    def mean_batch_size(self) -> float:
        """Average number of points coalesced per ``process_batch`` call."""
        if self.batches.value == 0:
            return 0.0
        return self.points.value / self.batches.value

    def as_dict(self) -> dict:
        """Flat reporting view (throughput + latency percentiles)."""
        latency = self.latency.as_dict()
        path = self.path_latency.as_dict()
        return {
            "shard": self.shard_id,
            "points": int(self.points.value),
            "batches": int(self.batches.value),
            "mean_batch_size": round(self.mean_batch_size, 1),
            "busy_seconds": round(self.busy_seconds.value, 4),
            "points_per_second": round(self.points_per_second, 1),
            "latency_p50_ms": round(1e3 * latency["p50"], 3),
            "latency_p95_ms": round(1e3 * latency["p95"], 3),
            "latency_p99_ms": round(1e3 * latency["p99"], 3),
            "path_p50_ms": round(1e3 * path["p50"], 3),
            "path_p95_ms": round(1e3 * path["p95"], 3),
            "path_p99_ms": round(1e3 * path["p99"], 3),
            "errors": int(self.errors.value),
            "shed_points": int(self.shed_points.value),
            "degraded_points": int(self.degraded_points.value),
            "quarantined_points": int(self.quarantined_points.value),
            "ipc_retries": int(self.ipc_retries.value),
            "restarts": int(self.restarts.value),
            "recovery_ms": round(1e3 * self.recovery_seconds.value, 1),
        }


class ShardWorker(threading.Thread):
    """Thread flavour: one daemon thread per shard, detector in-process.

    With a ``learning`` coordinator attached (deferred-learning mode) the
    worker drives the incremental loop: score a batch until the detector
    stops at an apply point, deliver the scored prefix immediately, hand the
    emitted learn requests to the coordinator, and block for the
    publications only when more points actually need them — the wait happens
    *between* ``process_batch`` calls, off the detection path, and overlaps
    with other shards' detection and searches.  Without a coordinator any
    pending requests (e.g. restored from a mid-flight checkpoint) are
    resolved inline.
    """

    #: Upper bound on one publication wait; a search that exceeds it turns
    #: into a shard failure instead of a silent hang.
    LEARN_TIMEOUT = 600.0

    def __init__(self, shard_id: int, detector: SPOT, batcher: MicroBatcher,
                 on_results: ResultsCallback,
                 learning: Optional[LearningCoordinator] = None, *,
                 faults: Optional[FaultInjector] = None,
                 deadline: float = 0.0, deadline_policy: str = "shed",
                 quarantine_on_failure: bool = True,
                 tracer=None, recorder=None) -> None:
        super().__init__(name=f"spot-shard-{shard_id}", daemon=True)
        if deadline_policy not in DEADLINE_POLICIES:
            raise ConfigurationError(
                f"deadline_policy must be one of {DEADLINE_POLICIES}, "
                f"got {deadline_policy!r}")
        self.shard_id = shard_id
        self.detector = detector
        self.batcher = batcher
        self.on_results = on_results
        self.learning = learning
        self.faults = faults
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.deadline = deadline
        self.deadline_policy = deadline_policy
        self.quarantine_on_failure = quarantine_on_failure
        self.failure: Optional[BaseException] = None
        self._retired = threading.Event()
        self._tickets: dict = {}

    def retire(self) -> None:
        """Stop consuming without closing the queue (supervised recovery)."""
        self._retired.set()
        self.batcher.interrupt()

    def run(self) -> None:
        while True:
            batch = self.batcher.next_batch(stop=self._retired)
            if batch is None:
                if self._retired.is_set():
                    return  # retired mid-failure; the supervisor takes over
                # Graceful shutdown: apply any still-outstanding publication
                # so the stopped fleet holds the same SSTs an uninterrupted
                # synchronous run would (the apply point of a request emitted
                # by the final point lies beyond the stream's end).
                if self.failure is None:
                    try:
                        self._resolve_pending_learns()
                    except Exception as exc:
                        self.failure = exc
                return
            if self.failure is not None:
                if not self.quarantine_on_failure:
                    # Retiring: hand the popped batch back for the successor.
                    self.batcher.requeue(batch)
                    return
                # Quarantine: a failed process_batch may have committed a
                # prefix of its chunk, so the detector's summaries are not
                # trustworthy anymore.  Later batches are rejected instead of
                # being scored against a possibly half-updated store.
                self.on_results(self.shard_id, batch, None, 0.0,
                                f"shard quarantined after earlier failure: "
                                f"{type(self.failure).__name__}: {self.failure}")
                continue
            self._run_batch(batch)
            if self.failure is not None and not self.quarantine_on_failure:
                return  # leave remaining queue traffic to the replacement

    def _shed_overdue(self, batch: List[BatchItem]) -> List[BatchItem]:
        """Drop points past their deadline; returns the still-live ones."""
        if self.deadline <= 0.0 or self.deadline_policy != "shed":
            return batch
        now = time.monotonic()
        live = [item for item in batch
                if now - item.enqueued_at <= self.deadline]
        if len(live) < len(batch):
            overdue = [item for item in batch
                       if now - item.enqueued_at > self.deadline]
            self.on_results(self.shard_id, overdue, None, 0.0, None,
                            shed=True)
        return live

    def _run_batch(self, batch: List[BatchItem]) -> None:
        if self.faults is not None:
            stall = self.faults.stall_seconds([item.seq for item in batch])
            if stall > 0.0:
                time.sleep(stall)
        batch = self._shed_overdue(batch)
        if not batch:
            return
        if self.faults is not None:
            consume = self.faults.crash_consume([item.seq for item in batch])
            if consume is not None:
                # Torn batch: commit a prefix to the detector, then die with
                # the whole batch undelivered — the worst case snapshot-plus-
                # replay recovery has to absorb.
                try:
                    self.detector.process_batch(
                        [item.values for item in batch[:consume]])
                except Exception:
                    pass  # the crash below is the failure under test
                exc = InjectedFault(
                    f"injected worker crash at shard {self.shard_id}")
                self.failure = exc
                self.on_results(self.shard_id, batch, None, 0.0,
                                f"{type(exc).__name__}: {exc}")
                return
        offset = 0
        with self.tracer.span("shard.batch", shard=self.shard_id,
                              seq_first=batch[0].seq, seq_last=batch[-1].seq,
                              n=len(batch)) as batch_span:
            while offset < len(batch):
                try:
                    # Apply every publication due before the next point;
                    # waits (if any) burn queue time, not detection-path
                    # time.
                    self._resolve_pending_learns()
                except Exception as exc:
                    self.failure = exc
                    self.on_results(self.shard_id, batch[offset:], None, 0.0,
                                    f"{type(exc).__name__}: {exc}")
                    return
                started = time.perf_counter()
                with self.tracer.span("shard.score", parent=batch_span,
                                      shard=self.shard_id,
                                      seq_first=batch[offset].seq) as score:
                    try:
                        results = self.detector.process_batch(
                            [item.values for item in batch[offset:]])
                        error = None
                    except Exception as exc:  # surfaced via drain()/stop()
                        self.failure = exc
                        results = None
                        error = f"{type(exc).__name__}: {exc}"
                busy = time.perf_counter() - started
                if error is not None:
                    self.on_results(self.shard_id, batch[offset:], None,
                                    busy, error)
                    return
                consumed = len(results)
                score.annotate(scored=consumed)
                if consumed == 0:
                    # Deferred mode guarantees progress (the stop point is
                    # always *after* the triggering point); zero progress
                    # means the contract broke and looping again would hang
                    # the shard.
                    self.failure = ConfigurationError(
                        "detector made no progress on a non-empty batch")
                    self.on_results(self.shard_id, batch[offset:], None,
                                    busy, str(self.failure))
                    return
                self.on_results(self.shard_id,
                                batch[offset:offset + consumed],
                                results, busy, None)
                offset += consumed
                # Ship new learn requests right away: the searches run on
                # the coordinator pool while this shard waits for its next
                # batch.
                self._dispatch_new_learns()

    # ------------------------------------------------------------------ #
    # Deferred learning plumbing
    # ------------------------------------------------------------------ #
    def _dispatch_new_learns(self) -> None:
        if self.learning is None:
            return
        pending = self.detector.pending_learn_requests
        new = [request for request in pending
               if request.request_id not in self._tickets]
        if not new:
            return
        ticket = self.learning.submit(self.shard_id, self.detector.grid, new)
        if self.tracer.enabled:
            for request in new:
                self.tracer.event("learning.submit", shard=self.shard_id,
                                  request=request.request_id,
                                  kind=request.kind)
        for request in new:
            self._tickets[request.request_id] = ticket

    def _resolve_pending_learns(self) -> None:
        while True:
            pending = self.detector.pending_learn_requests
            if not pending:
                return
            if self.learning is None:
                # No coordinator (synchronous service, or a restored shard
                # before one is attached): replay the searches inline.
                resolved = self.detector.resolve_pending_learns()
                if resolved and self.recorder.enabled:
                    self.recorder.record_event("learn.apply",
                                               shard=self.shard_id,
                                               inline=resolved)
                return
            ticket: Optional[LearnTicket] = \
                self._tickets.get(pending[0].request_id)
            if ticket is None:
                self._dispatch_new_learns()
                ticket = self._tickets[pending[0].request_id]
            with self.tracer.span("learning.wait", shard=self.shard_id,
                                  request=pending[0].request_id):
                publications = ticket.wait(timeout=self.LEARN_TIMEOUT)
            for publication in publications:
                self.detector.apply_learn_publication(publication)
                if self.tracer.enabled:
                    self.tracer.event("learning.apply", shard=self.shard_id,
                                      request=publication.request_id)
                if self.recorder.enabled:
                    self.recorder.record_event(
                        "learn.apply", shard=self.shard_id,
                        request=publication.request_id)
            for request_id in ticket.request_ids:
                self._tickets.pop(request_id, None)

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain-and-stop: close the queue and join the thread."""
        self.batcher.close()
        self.join(timeout=timeout)

    def export_state(self) -> dict:
        """Full-state snapshot of the shard's detector.

        Only safe while the shard is quiescent (the service drains before
        checkpointing, so no batch is in flight).  In deferred-learning mode
        the snapshot carries any still-unapplied learn requests — a restored
        shard re-evaluates them before touching its next point.  Cell arrays
        are exported in ``"copy"`` mode: the service both writes the snapshot
        to disk and hands it to the supervisor's in-memory recovery cache, so
        it must not alias the live store.
        """
        return self.detector.export_state(arrays="copy")


def _process_worker_main(state_payload: dict, inbox, outbox,
                         fault_plan: Optional[dict] = None,
                         deferred: bool = False) -> None:
    """Child-process loop: rebuild the detector, then serve commands.

    With ``deferred=False`` (sync service) the child runs learning inline: a
    state restored from a deferred-mode checkpoint replays its in-flight
    searches now, then stays sync.  With ``deferred=True`` the child runs
    the request/publication protocol *over the IPC queues*: learn requests
    emitted by the detector are shipped to the parent as ``("learn", gid,
    grid, requests)`` groups (everything JSON round-trippable), the parent
    evaluates them on the shared :class:`LearningCoordinator` pool, and the
    publications come back through the inbox as ``("publications", gid,
    payloads)`` — applied here in group order at the detector's
    deterministic apply points, so process-shard async decisions are
    identical to sync ones.
    """
    import os
    from collections import deque

    from ..learning.requests import LearnPublication
    from .learning import _grid_payload

    detector = SPOT.from_state(state_payload)
    detector.set_deferred_learning(bool(deferred))
    if not deferred and detector.pending_learn_requests:
        detector.resolve_pending_learns()
    faults = FaultInjector(FaultPlan.from_dict(fault_plan)) \
        if fault_plan else None
    #: Commands that arrived on the inbox while blocked for publications;
    #: replayed (in order) before anything newly read.
    backlog: "deque" = deque()
    sent: dict = {}      # request_id -> group id already shipped
    received: dict = {}  # group id -> publication payloads (None = failed)
    next_gid = [0]

    def dispatch_new_learns() -> None:
        new = [request for request in detector.pending_learn_requests
               if request.request_id not in sent]
        if not new:
            return
        gid = next_gid[0]
        next_gid[0] += 1
        outbox.put(("learn", gid, _grid_payload(detector.grid),
                    [request.to_dict() for request in new]))
        for request in new:
            sent[request.request_id] = gid

    def resolve_pending_learns() -> None:
        while True:
            pending = detector.pending_learn_requests
            if not pending:
                return
            gid = sent.get(pending[0].request_id)
            if gid is None:
                dispatch_new_learns()
                gid = sent[pending[0].request_id]
            while gid not in received:
                # Only publications unblock the detector; any other command
                # the parent pipelined behind them waits in the backlog.
                message = inbox.get(timeout=ShardWorker.LEARN_TIMEOUT)
                if message[0] == "publications":
                    received[message[1]] = message[2]
                else:
                    backlog.append(message)
            payloads = received.pop(gid)
            if payloads is None:
                raise ConfigurationError(
                    "the learning coordinator failed to evaluate a "
                    "request group")
            for payload in payloads:
                detector.apply_learn_publication(
                    LearnPublication.from_dict(payload))
            for request_id in [rid for rid, g in sent.items() if g == gid]:
                sent.pop(request_id, None)

    while True:
        command = backlog.popleft() if backlog else inbox.get()
        kind = command[0]
        if kind == "publications":
            # A search finished while this shard sat idle between batches;
            # bank it for the resolve that will eventually need it.
            received[command[1]] = command[2]
        elif kind == "batch":
            seqs, values = command[1], command[2]
            if faults is not None:
                stall = faults.stall_seconds(seqs)
                if stall > 0.0:
                    time.sleep(stall)
                consume = faults.crash_consume(seqs)
                if consume is not None:
                    # A *hard* crash: commit a prefix, then kill the process
                    # without a reply, so the parent sees a dead child with
                    # the whole batch in flight (the supervisor's worst case).
                    try:
                        detector.process_batch(values[:consume])
                    except Exception:
                        pass
                    outbox.close()
                    os._exit(23)
            # The same offset loop as the thread worker: score up to the
            # next apply point, reply with the chunk immediately (the
            # parent delivers per-seq, so partial replies are fine), apply
            # due publications, continue.  Sync mode never stops early, so
            # the loop degenerates to the historical one-reply path.
            offset = 0
            while offset < len(seqs):
                try:
                    resolve_pending_learns()
                except Exception as exc:
                    outbox.put(("results", seqs[offset:], None, 0.0,
                                f"{type(exc).__name__}: {exc}"))
                    break
                started = time.perf_counter()
                try:
                    results = detector.process_batch(values[offset:])
                except Exception as exc:
                    outbox.put(("results", seqs[offset:], None,
                                time.perf_counter() - started,
                                f"{type(exc).__name__}: {exc}"))
                    break
                busy = time.perf_counter() - started
                consumed = len(results)
                if consumed == 0:
                    outbox.put(("results", seqs[offset:], None, busy,
                                "detector made no progress on a non-empty "
                                "batch"))
                    break
                outbox.put(("results", seqs[offset:offset + consumed],
                            results, busy, None))
                offset += consumed
                dispatch_new_learns()
        elif kind == "export":
            # "copy" arrays pickle across the pipe as independent buffers —
            # far cheaper than the per-element list payload of "json" mode.
            outbox.put(("state", detector.export_state(arrays="copy")))
        elif kind == "stop":
            if deferred and detector.pending_learn_requests:
                # Graceful shutdown mirrors the thread worker: apply any
                # still-outstanding publication so the stopped fleet holds
                # the same SSTs an uninterrupted synchronous run would.
                try:
                    resolve_pending_learns()
                except Exception as exc:
                    outbox.put(("results", [], None, 0.0,
                                f"final learn resolution failed: "
                                f"{type(exc).__name__}: {exc}"))
            outbox.put(("stopped",))
            return


class ProcessShardWorker:
    """Process flavour: the shard's detector lives in a child OS process.

    A feeder thread pulls coalesced batches off the shard's
    :class:`MicroBatcher` and ships ``(seq, values)`` pairs to the child; a
    collector thread correlates the child's replies back to the original
    :class:`BatchItem` bookkeeping and invokes the shared ``on_results``
    callback.  Detection results cross the process boundary as pickled
    :class:`DetectionResult` objects, so downstream consumers see exactly
    what the thread flavour delivers.

    Queue operations toward the child go through a bounded
    retry-with-backoff loop (:class:`~repro.service.faults.RetryPolicy`), so
    a transient IPC hiccup costs a jittered retry instead of a shard.
    """

    def __init__(self, shard_id: int, detector: SPOT, batcher: MicroBatcher,
                 on_results: ResultsCallback, *,
                 fault_plan: Optional[FaultPlan] = None,
                 faults: Optional[FaultInjector] = None,
                 deadline: float = 0.0, deadline_policy: str = "shed",
                 quarantine_on_failure: bool = True,
                 retry_policy: Optional[RetryPolicy] = None,
                 on_ipc_retry: Optional[Callable[[int], None]] = None,
                 learning: Optional[LearningCoordinator] = None,
                 tracer=None, recorder=None) -> None:
        import multiprocessing

        if deadline_policy not in DEADLINE_POLICIES:
            raise ConfigurationError(
                f"deadline_policy must be one of {DEADLINE_POLICIES}, "
                f"got {deadline_policy!r}")
        self.shard_id = shard_id
        self.batcher = batcher
        self.on_results = on_results
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Process shards record on the parent side only (the delivery path
        # runs there); the child scores, the parent stamps the ring.
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.deadline = deadline
        self.deadline_policy = deadline_policy
        self.quarantine_on_failure = quarantine_on_failure
        self.retry_policy = retry_policy if retry_policy is not None \
            else RetryPolicy()
        self.on_ipc_retry = on_ipc_retry
        #: Parent-side injector (IPC faults fire in the parent; crash and
        #: stall faults ship to the child inside ``fault_plan``).
        self.faults = faults
        #: Shared learning coordinator for ``learning_mode="async"``.  When
        #: set, the child runs in deferred mode and ships its learn-request
        #: groups over the outbox; the parent evaluates them on the
        #: coordinator pool and feeds publications back through the inbox.
        self.learning = learning
        self.failure: Optional[BaseException] = None
        context = multiprocessing.get_context()
        self._inbox = context.Queue()
        self._outbox = context.Queue()
        self._process = context.Process(
            target=_process_worker_main,
            args=(detector.export_state(arrays="copy"), self._inbox,
                  self._outbox,
                  fault_plan.to_dict() if fault_plan is not None else None,
                  learning is not None),
            daemon=True,
            name=f"spot-shard-{shard_id}",
        )
        self._pending: dict = {}
        self._pending_lock = threading.Lock()
        self._retired = threading.Event()
        self._state_box: List[dict] = []
        self._state_ready = threading.Event()
        self._feeder = threading.Thread(target=self._feed,
                                        name=f"spot-feeder-{shard_id}",
                                        daemon=True)
        self._collector = threading.Thread(target=self._collect,
                                           name=f"spot-collector-{shard_id}",
                                           daemon=True)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._process.start()
        self._feeder.start()
        self._collector.start()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain-and-stop: close the queue, stop the child, join everything."""
        self.batcher.close()
        self._feeder.join(timeout=timeout)
        self._inbox.put(("stop",))
        self._collector.join(timeout=timeout)
        self._process.join(timeout=timeout)
        self._release_queues()

    def retire(self, timeout: Optional[float] = None) -> None:
        """Stop feeding without closing the queue (supervised recovery)."""
        self._retired.set()
        self.batcher.interrupt()
        self._feeder.join(timeout=timeout)
        self._collector.join(timeout=timeout)
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=timeout)
        self._release_queues()

    def _release_queues(self) -> None:
        # A dead child never drains its inbox; anything still buffered in
        # the queue's feeder pipe would make interpreter exit block forever
        # on the join-thread finalizer.  Nothing buffered is needed once
        # the child is gone, so drop it instead of waiting.
        for queue in (self._inbox, self._outbox):
            queue.cancel_join_thread()
            queue.close()

    def is_alive(self) -> bool:
        return self._process.is_alive()

    def drain_pending(self) -> List[BatchItem]:
        """Sweep in-flight items after :meth:`retire` (supervised recovery).

        Closes the shutdown race where the feeder ships one more batch to a
        child that is already dead (or already retired by the collector):
        those points sit in ``_pending`` with nobody left to deliver them.
        Only call after the plumbing threads are joined.
        """
        with self._pending_lock:
            items = sorted(self._pending.values(), key=lambda item: item.seq)
            self._pending.clear()
        return items

    # ------------------------------------------------------------------ #
    # Plumbing threads
    # ------------------------------------------------------------------ #
    def _shed_overdue(self, batch: List[BatchItem]) -> List[BatchItem]:
        if self.deadline <= 0.0 or self.deadline_policy != "shed":
            return batch
        now = time.monotonic()
        live = [item for item in batch
                if now - item.enqueued_at <= self.deadline]
        if len(live) < len(batch):
            overdue = [item for item in batch
                       if now - item.enqueued_at > self.deadline]
            self.on_results(self.shard_id, overdue, None, 0.0, None,
                            shed=True)
        return live

    def _ship(self, batch: List[BatchItem]) -> None:
        seqs = [item.seq for item in batch]
        values = [item.values for item in batch]
        if self.tracer.enabled:
            # The scoring itself happens in the child process; the parent
            # traces the hand-off (the IPC retry events ride on the
            # service-level callback).
            self.tracer.event("shard.ship", shard=self.shard_id,
                              seq_first=seqs[0], seq_last=seqs[-1],
                              n=len(seqs))

        def attempt() -> None:
            if self.faults is not None and self.faults.ipc_should_fail(seqs):
                raise TransientIPCError(
                    f"injected inbox failure at seq {seqs[0]}")
            self._inbox.put(("batch", seqs, values))

        def count_retry(attempt_number: int, exc: BaseException) -> None:
            if self.on_ipc_retry is not None:
                self.on_ipc_retry(self.shard_id)

        call_with_retry(attempt, self.retry_policy,
                        seed=self.shard_id * 1_000_003 + seqs[0],
                        on_retry=count_retry)

    def _feed(self) -> None:
        while True:
            batch = self.batcher.next_batch(stop=self._retired)
            if batch is None:
                return
            if self.failure is not None:
                if not self.quarantine_on_failure:
                    # Retiring: hand the popped batch back for the successor.
                    self.batcher.requeue(batch)
                    return
                # Quarantine, mirroring the thread flavour: once the child
                # reported a failure (or died) its summaries cannot be
                # trusted, so later batches are rejected in the parent.
                self.on_results(self.shard_id, batch, None, 0.0,
                                f"shard quarantined after earlier failure: "
                                f"{self.failure}")
                continue
            batch = self._shed_overdue(batch)
            if not batch:
                continue
            with self._pending_lock:
                for item in batch:
                    self._pending[item.seq] = item
            self._ship(batch)

    def _fail_pending(self, reason: str) -> None:
        """Deliver an error for every in-flight point (child is gone)."""
        with self._pending_lock:
            items = list(self._pending.values())
            self._pending.clear()
        self.failure = ConfigurationError(
            f"shard {self.shard_id}: {reason}")
        if not self.quarantine_on_failure:
            # Supervised: unblock the feeder so it retires and requeues
            # anything it already popped, instead of quarantining forever.
            self._retired.set()
            self.batcher.interrupt()
        self._state_ready.set()  # unblock a waiting export_state call
        if items:
            self.on_results(self.shard_id, items, None, 0.0, reason)

    def _collect(self) -> None:
        import queue as queue_module

        while True:
            if self._retired.is_set():
                return
            try:
                message = call_with_retry(
                    lambda: self._outbox.get(timeout=0.5),
                    self.retry_policy, retry_on=(OSError,),
                    seed=self.shard_id)
            except queue_module.Empty:
                if self._process.is_alive():
                    continue
                # The child is gone.  Give its queue feeder one grace period
                # to flush messages written just before death, then convert
                # whatever is still in flight into a shard error so drain()
                # surfaces the failure instead of hanging forever.
                try:
                    message = self._outbox.get(timeout=0.5)
                except queue_module.Empty:
                    self._fail_pending("worker process died unexpectedly")
                    return
            kind = message[0]
            if kind == "results":
                _, seqs, results, busy, error = message
                with self._pending_lock:
                    items = [self._pending.pop(seq) for seq in seqs]
                if error is not None:
                    self.failure = ConfigurationError(
                        f"shard {self.shard_id} worker failed: {error}")
                    if not self.quarantine_on_failure:
                        # Supervised: stop both plumbing threads so the
                        # supervisor can terminate the child and replace the
                        # whole worker from the last checkpoint.
                        self._retired.set()
                        self.batcher.interrupt()
                        self.on_results(self.shard_id, items, results, busy,
                                        error)
                        return
                self.on_results(self.shard_id, items, results, busy, error)
            elif kind == "learn":
                self._handle_learn(message[1], message[2], message[3])
            elif kind == "state":
                self._state_box.append(message[1])
                self._state_ready.set()
            elif kind == "stopped":
                return

    def _handle_learn(self, gid: int, grid_payload: dict,
                      request_payloads: list) -> None:
        """Bridge one child learn-request group onto the coordinator pool.

        The submit + wait runs on its own daemon thread so the collector
        keeps delivering results while a MOGA search is in flight — exactly
        the latency-hiding the thread flavour gets from deferred learning.
        The reply (``("publications", gid, payloads)``, with ``None``
        signalling a failed evaluation) goes back through the child's inbox.
        """
        from .learning import _grid_from_payload

        def evaluate() -> None:
            try:
                if self.learning is None:
                    raise ConfigurationError(
                        f"shard {self.shard_id} sent a learn request but no "
                        f"learning coordinator is attached")
                grid = _grid_from_payload(grid_payload)
                requests = [request_from_dict(payload)
                            for payload in request_payloads]
                ticket = self.learning.submit(self.shard_id, grid, requests)
                publications = ticket.wait(timeout=ShardWorker.LEARN_TIMEOUT)
                reply = [publication.to_dict()
                         for publication in publications]
            except Exception:
                reply = None
            try:
                self._inbox.put(("publications", gid, reply))
            except (OSError, ValueError):
                # Queues already released (worker retired mid-search); the
                # child is gone, nobody is waiting for this reply.
                pass

        threading.Thread(target=evaluate,
                         name=f"spot-learn-{self.shard_id}-{gid}",
                         daemon=True).start()

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def export_state(self, timeout: float = 60.0) -> dict:
        """Ask the child for its detector's full state (service is drained)."""
        self._state_ready.clear()
        self._state_box.clear()
        self._inbox.put(("export",))
        if not self._state_ready.wait(timeout=timeout):
            raise ConfigurationError(
                f"shard {self.shard_id} did not export its state within "
                f"{timeout} seconds")
        if not self._state_box:  # woken by _fail_pending, not by a state reply
            raise ConfigurationError(
                f"shard {self.shard_id} cannot export state: {self.failure}")
        return self._state_box[0]
