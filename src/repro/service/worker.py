"""Shard workers: drive one detector shard off its micro-batch queue.

Two interchangeable flavours:

* :class:`ShardWorker` — a daemon thread owning its detector in-process.
  The default: zero serialisation cost, shared memory, and (because NumPy
  releases the GIL inside large array ops) some overlap between shards.
* :class:`ProcessShardWorker` — one OS process per shard, fed through
  multiprocessing queues.  The detector is shipped to the child as a
  full-state checkpoint payload and re-materialised there, so the flavour is
  exactly as resumable as the thread one.  Worth it on multi-core hosts
  where the GIL would otherwise serialise the shards.

Both expose the same surface to the service: ``start()``, ``shutdown()``,
``export_state()`` and a ``failure`` attribute, and both deliver every
processed batch through the service's ``on_results`` callback:

    on_results(shard_id, items, results, busy_seconds, error)

with ``results`` a list of :class:`~repro.core.results.DetectionResult`
aligned with ``items`` (or ``None`` when ``error`` is set).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.detector import SPOT
from ..core.exceptions import ConfigurationError
from ..metrics.throughput import LatencySeries
from .batcher import BatchItem, MicroBatcher
from .learning import LearningCoordinator, LearnTicket

ResultsCallback = Callable[..., None]


@dataclass
class ShardStats:
    """Serving statistics of one shard (maintained by the service)."""

    shard_id: int
    points: int = 0
    batches: int = 0
    busy_seconds: float = 0.0
    latency: LatencySeries = field(default_factory=LatencySeries)
    #: Detection-path latency: the time the ``process_batch`` call that
    #: scored a point spent on the detection path (one sample per point).
    #: Inline learning charges its MOGA searches here; deferred learning
    #: moves them to the coordinator, which is exactly what the L2 benchmark
    #: measures.
    path_latency: LatencySeries = field(default_factory=LatencySeries)
    errors: int = 0

    @property
    def points_per_second(self) -> float:
        """Throughput over the shard's *busy* time (excludes idle waits)."""
        if self.busy_seconds <= 0.0:
            return 0.0
        return self.points / self.busy_seconds

    @property
    def mean_batch_size(self) -> float:
        """Average number of points coalesced per ``process_batch`` call."""
        if self.batches == 0:
            return 0.0
        return self.points / self.batches

    def as_dict(self) -> dict:
        """Flat reporting view (throughput + latency percentiles)."""
        latency = self.latency.as_dict()
        path = self.path_latency.as_dict()
        return {
            "shard": self.shard_id,
            "points": self.points,
            "batches": self.batches,
            "mean_batch_size": round(self.mean_batch_size, 1),
            "busy_seconds": round(self.busy_seconds, 4),
            "points_per_second": round(self.points_per_second, 1),
            "latency_p50_ms": round(1e3 * latency["p50"], 3),
            "latency_p95_ms": round(1e3 * latency["p95"], 3),
            "latency_p99_ms": round(1e3 * latency["p99"], 3),
            "path_p50_ms": round(1e3 * path["p50"], 3),
            "path_p95_ms": round(1e3 * path["p95"], 3),
            "path_p99_ms": round(1e3 * path["p99"], 3),
            "errors": self.errors,
        }


class ShardWorker(threading.Thread):
    """Thread flavour: one daemon thread per shard, detector in-process.

    With a ``learning`` coordinator attached (deferred-learning mode) the
    worker drives the incremental loop: score a batch until the detector
    stops at an apply point, deliver the scored prefix immediately, hand the
    emitted learn requests to the coordinator, and block for the
    publications only when more points actually need them — the wait happens
    *between* ``process_batch`` calls, off the detection path, and overlaps
    with other shards' detection and searches.  Without a coordinator any
    pending requests (e.g. restored from a mid-flight checkpoint) are
    resolved inline.
    """

    #: Upper bound on one publication wait; a search that exceeds it turns
    #: into a shard failure instead of a silent hang.
    LEARN_TIMEOUT = 600.0

    def __init__(self, shard_id: int, detector: SPOT, batcher: MicroBatcher,
                 on_results: ResultsCallback,
                 learning: Optional[LearningCoordinator] = None) -> None:
        super().__init__(name=f"spot-shard-{shard_id}", daemon=True)
        self.shard_id = shard_id
        self.detector = detector
        self.batcher = batcher
        self.on_results = on_results
        self.learning = learning
        self.failure: Optional[BaseException] = None
        self._tickets: dict = {}

    def run(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                # Graceful shutdown: apply any still-outstanding publication
                # so the stopped fleet holds the same SSTs an uninterrupted
                # synchronous run would (the apply point of a request emitted
                # by the final point lies beyond the stream's end).
                if self.failure is None:
                    try:
                        self._resolve_pending_learns()
                    except BaseException as exc:
                        self.failure = exc
                return
            if self.failure is not None:
                # Quarantine: a failed process_batch may have committed a
                # prefix of its chunk, so the detector's summaries are not
                # trustworthy anymore.  Later batches are rejected instead of
                # being scored against a possibly half-updated store.
                self.on_results(self.shard_id, batch, None, 0.0,
                                f"shard quarantined after earlier failure: "
                                f"{type(self.failure).__name__}: {self.failure}")
                continue
            self._run_batch(batch)

    def _run_batch(self, batch: List[BatchItem]) -> None:
        offset = 0
        while offset < len(batch):
            try:
                # Apply every publication due before the next point; waits
                # (if any) burn queue time, not detection-path time.
                self._resolve_pending_learns()
            except BaseException as exc:
                self.failure = exc
                self.on_results(self.shard_id, batch[offset:], None, 0.0,
                                f"{type(exc).__name__}: {exc}")
                return
            started = time.perf_counter()
            try:
                results = self.detector.process_batch(
                    [item.values for item in batch[offset:]])
                error = None
            except BaseException as exc:  # surfaced via drain()/stop()
                self.failure = exc
                results = None
                error = f"{type(exc).__name__}: {exc}"
            busy = time.perf_counter() - started
            if error is not None:
                self.on_results(self.shard_id, batch[offset:], None, busy,
                                error)
                return
            consumed = len(results)
            if consumed == 0:
                # Deferred mode guarantees progress (the stop point is always
                # *after* the triggering point); zero progress means the
                # contract broke and looping again would hang the shard.
                self.failure = ConfigurationError(
                    "detector made no progress on a non-empty batch")
                self.on_results(self.shard_id, batch[offset:], None, busy,
                                str(self.failure))
                return
            self.on_results(self.shard_id, batch[offset:offset + consumed],
                            results, busy, None)
            offset += consumed
            # Ship new learn requests right away: the searches run on the
            # coordinator pool while this shard waits for its next batch.
            self._dispatch_new_learns()

    # ------------------------------------------------------------------ #
    # Deferred learning plumbing
    # ------------------------------------------------------------------ #
    def _dispatch_new_learns(self) -> None:
        if self.learning is None:
            return
        pending = self.detector.pending_learn_requests
        new = [request for request in pending
               if request.request_id not in self._tickets]
        if not new:
            return
        ticket = self.learning.submit(self.shard_id, self.detector.grid, new)
        for request in new:
            self._tickets[request.request_id] = ticket

    def _resolve_pending_learns(self) -> None:
        while True:
            pending = self.detector.pending_learn_requests
            if not pending:
                return
            if self.learning is None:
                # No coordinator (synchronous service, or a restored shard
                # before one is attached): replay the searches inline.
                self.detector.resolve_pending_learns()
                return
            ticket: Optional[LearnTicket] = \
                self._tickets.get(pending[0].request_id)
            if ticket is None:
                self._dispatch_new_learns()
                ticket = self._tickets[pending[0].request_id]
            for publication in ticket.wait(timeout=self.LEARN_TIMEOUT):
                self.detector.apply_learn_publication(publication)
            for request_id in ticket.request_ids:
                self._tickets.pop(request_id, None)

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain-and-stop: close the queue and join the thread."""
        self.batcher.close()
        self.join(timeout=timeout)

    def export_state(self) -> dict:
        """Full-state snapshot of the shard's detector.

        Only safe while the shard is quiescent (the service drains before
        checkpointing, so no batch is in flight).  In deferred-learning mode
        the snapshot carries any still-unapplied learn requests — a restored
        shard re-evaluates them before touching its next point.
        """
        return self.detector.export_state()


def _process_worker_main(state_payload: dict, inbox, outbox) -> None:
    """Child-process loop: rebuild the detector, then serve commands."""
    detector = SPOT.from_state(state_payload)
    # Process shards run learning inline: a state restored from a deferred-
    # mode checkpoint replays its in-flight searches now, then stays sync.
    detector.set_deferred_learning(False)
    if detector.pending_learn_requests:
        detector.resolve_pending_learns()
    while True:
        command = inbox.get()
        kind = command[0]
        if kind == "batch":
            seqs, values = command[1], command[2]
            started = time.perf_counter()
            try:
                results = detector.process_batch(values)
                outbox.put(("results", seqs,
                            results, time.perf_counter() - started, None))
            except BaseException as exc:
                outbox.put(("results", seqs, None,
                            time.perf_counter() - started,
                            f"{type(exc).__name__}: {exc}"))
        elif kind == "export":
            outbox.put(("state", detector.export_state()))
        elif kind == "stop":
            outbox.put(("stopped",))
            return


class ProcessShardWorker:
    """Process flavour: the shard's detector lives in a child OS process.

    A feeder thread pulls coalesced batches off the shard's
    :class:`MicroBatcher` and ships ``(seq, values)`` pairs to the child; a
    collector thread correlates the child's replies back to the original
    :class:`BatchItem` bookkeeping and invokes the shared ``on_results``
    callback.  Detection results cross the process boundary as pickled
    :class:`DetectionResult` objects, so downstream consumers see exactly
    what the thread flavour delivers.
    """

    def __init__(self, shard_id: int, detector: SPOT, batcher: MicroBatcher,
                 on_results: ResultsCallback) -> None:
        import multiprocessing

        self.shard_id = shard_id
        self.batcher = batcher
        self.on_results = on_results
        self.failure: Optional[BaseException] = None
        context = multiprocessing.get_context()
        self._inbox = context.Queue()
        self._outbox = context.Queue()
        self._process = context.Process(
            target=_process_worker_main,
            args=(detector.export_state(), self._inbox, self._outbox),
            daemon=True,
            name=f"spot-shard-{shard_id}",
        )
        self._pending: dict = {}
        self._pending_lock = threading.Lock()
        self._state_box: List[dict] = []
        self._state_ready = threading.Event()
        self._feeder = threading.Thread(target=self._feed,
                                        name=f"spot-feeder-{shard_id}",
                                        daemon=True)
        self._collector = threading.Thread(target=self._collect,
                                           name=f"spot-collector-{shard_id}",
                                           daemon=True)

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> None:
        self._process.start()
        self._feeder.start()
        self._collector.start()

    def shutdown(self, timeout: Optional[float] = None) -> None:
        """Drain-and-stop: close the queue, stop the child, join everything."""
        self.batcher.close()
        self._feeder.join(timeout=timeout)
        self._inbox.put(("stop",))
        self._collector.join(timeout=timeout)
        self._process.join(timeout=timeout)

    def is_alive(self) -> bool:
        return self._process.is_alive()

    # ------------------------------------------------------------------ #
    # Plumbing threads
    # ------------------------------------------------------------------ #
    def _feed(self) -> None:
        while True:
            batch = self.batcher.next_batch()
            if batch is None:
                return
            if self.failure is not None:
                # Quarantine, mirroring the thread flavour: once the child
                # reported a failure (or died) its summaries cannot be
                # trusted, so later batches are rejected in the parent.
                self.on_results(self.shard_id, batch, None, 0.0,
                                f"shard quarantined after earlier failure: "
                                f"{self.failure}")
                continue
            with self._pending_lock:
                for item in batch:
                    self._pending[item.seq] = item
            self._inbox.put(("batch",
                             [item.seq for item in batch],
                             [item.values for item in batch]))

    def _fail_pending(self, reason: str) -> None:
        """Deliver an error for every in-flight point (child is gone)."""
        with self._pending_lock:
            items = list(self._pending.values())
            self._pending.clear()
        self.failure = ConfigurationError(
            f"shard {self.shard_id}: {reason}")
        self._state_ready.set()  # unblock a waiting export_state call
        if items:
            self.on_results(self.shard_id, items, None, 0.0, reason)

    def _collect(self) -> None:
        import queue as queue_module

        while True:
            try:
                message = self._outbox.get(timeout=0.5)
            except queue_module.Empty:
                if self._process.is_alive():
                    continue
                # The child is gone.  Give its queue feeder one grace period
                # to flush messages written just before death, then convert
                # whatever is still in flight into a shard error so drain()
                # surfaces the failure instead of hanging forever.
                try:
                    message = self._outbox.get(timeout=0.5)
                except queue_module.Empty:
                    self._fail_pending("worker process died unexpectedly")
                    return
            kind = message[0]
            if kind == "results":
                _, seqs, results, busy, error = message
                with self._pending_lock:
                    items = [self._pending.pop(seq) for seq in seqs]
                if error is not None:
                    self.failure = ConfigurationError(
                        f"shard {self.shard_id} worker failed: {error}")
                self.on_results(self.shard_id, items, results, busy, error)
            elif kind == "state":
                self._state_box.append(message[1])
                self._state_ready.set()
            elif kind == "stopped":
                return

    # ------------------------------------------------------------------ #
    # Checkpointing
    # ------------------------------------------------------------------ #
    def export_state(self, timeout: float = 60.0) -> dict:
        """Ask the child for its detector's full state (service is drained)."""
        self._state_ready.clear()
        self._state_box.clear()
        self._inbox.put(("export",))
        if not self._state_ready.wait(timeout=timeout):
            raise ConfigurationError(
                f"shard {self.shard_id} did not export its state within "
                f"{timeout} seconds")
        if not self._state_box:  # woken by _fail_pending, not by a state reply
            raise ConfigurationError(
                f"shard {self.shard_id} cannot export state: {self.failure}")
        return self._state_box[0]
