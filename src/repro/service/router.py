"""Hash partitioning of stream ids onto detector shards.

Routing must be *stable* (a stream's points always land on the same shard —
per-stream order is what makes sharded decisions reproducible) and
*process-independent* (a restored service must route exactly like the one
that wrote the checkpoint).  Python's builtin ``hash`` is salted per process,
so the router uses CRC-32 over the UTF-8 stream id instead.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, TypeVar

from ..core.exceptions import ConfigurationError

KeyedT = TypeVar("KeyedT")


class ShardRouter:
    """Stable mapping of stream/tenant ids onto ``n_shards`` shard indices.

    Parameters
    ----------
    n_shards:
        Number of detector shards points are partitioned over.
    salt:
        Mixed into the hash; lets operators re-balance a pathological key set
        without changing the shard count.  Persisted in service checkpoints
        so restored services route identically.
    """

    kind = "static"

    def __init__(self, n_shards: int, *, salt: int = 0) -> None:
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be positive, got {n_shards}")
        self.n_shards = n_shards
        self.salt = int(salt)
        #: Explicit stream-id → shard overrides (live tenant migration);
        #: consulted before the hash, persisted in service checkpoints.
        self.pins: Dict[str, int] = {}

    def shard_of(self, stream_id: str) -> int:
        """The shard index that owns ``stream_id`` (deterministic)."""
        if self.pins:
            pinned = self.pins.get(stream_id)
            if pinned is not None:
                return pinned
        digest = zlib.crc32(f"{self.salt}:{stream_id}".encode("utf-8"))
        return digest % self.n_shards

    def partition(self, points: Iterable[KeyedT]) -> Dict[int, List[KeyedT]]:
        """Group stream-id-carrying points by owning shard, preserving order.

        Accepts anything exposing ``.stream_id`` (e.g.
        :class:`~repro.streams.tagged.TaggedStreamPoint`).  The per-shard
        lists are exactly the sub-streams a sharded service feeds each
        detector, which is what the parity harness replays against
        single-detector reference runs.
        """
        grouped: Dict[int, List[KeyedT]] = {i: [] for i in range(self.n_shards)}
        for point in points:
            grouped[self.shard_of(point.stream_id)].append(point)
        return grouped
