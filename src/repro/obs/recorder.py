"""Flight recorder: bounded per-shard rings of decisions + service events.

When a shard crashes or a tenant degrades, aggregate counters say *that*
something happened; the flight recorder says *what the service was doing in
the seconds before*.  It keeps one bounded ring per shard holding the most
recent committed decision records and service events (shed / degrade /
quarantine / restart / checkpoint / crash / learn-apply), each stamped with
a deterministic monotone sequence number — never a wall clock — so rings are
diffable across runs and across a crash-recovery.

Two export shapes:

* ``spot-flight/v1`` — the rings themselves (:meth:`FlightRecorder.to_dict`
  for JSON, :meth:`FlightRecorder.write_jsonl` for line-per-record spill).
* ``spot-diag/v1`` — the incident **diagnostics bundle** the
  :class:`~repro.service.supervisor.ShardSupervisor` snapshots on a crash
  (and :meth:`DetectionService.diagnose` exports on demand): metrics
  snapshot + trace tree + flight rings + config + fault log + git
  provenance, assembled by :func:`build_diag_payload` and checked by
  :func:`validate_diag_payload`.

Like ``NULL_TRACER``, :data:`NULL_RECORDER` makes every call a constant-time
no-op so the serving hot path holds a recorder reference unconditionally and
pays one boolean when recording is off.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Dict, List, Mapping, Optional

from .explain import decision_to_dict

#: Schema tag of every flight-ring export.
FLIGHT_SCHEMA = "spot-flight/v1"

#: Schema tag of every diagnostics bundle.
DIAG_SCHEMA = "spot-diag/v1"

#: Event kinds the serving layer records (decisions use kind="decision").
#: The ``migrate-*`` triple is the rebalancer's commit protocol: ``start``
#: when the routing gate closes, ``commit`` when the new topology owns the
#: traffic, ``abort`` when a migration-window fault rolled everything back
#: (the source kept ownership throughout).
EVENT_KINDS = ("shed", "degrade", "quarantine", "restart", "checkpoint",
               "crash", "learn.apply", "migrate-start", "migrate-commit",
               "migrate-abort")


class FlightRecorder:
    """Bounded per-shard rings of recent decisions and service events."""

    #: A recorder that records; call sites check this to skip packing work.
    enabled = True

    def __init__(self, capacity: int = 256, n_shards: int = 1) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.capacity = int(capacity)
        self._lock = threading.Lock()
        self._rings: Dict[int, "deque[Dict[str, object]]"] = {
            shard: deque(maxlen=self.capacity)
            for shard in range(max(1, int(n_shards)))
        }
        self._stamp = 0
        self.dropped = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _append(self, shard: int, record: Dict[str, object]) -> None:
        with self._lock:
            ring = self._rings.get(shard)
            if ring is None:
                ring = self._rings[shard] = deque(maxlen=self.capacity)
            self._stamp += 1
            record["stamp"] = self._stamp
            if len(ring) == ring.maxlen:
                self.dropped += 1
            ring.append(record)

    def record_decision(self, shard: int, seq: int, stream_id: str,
                        outcome: str, result) -> None:
        """Record one committed decision (a scored point's outcome).

        ``result`` is a :class:`~repro.core.results.DetectionResult`; when
        it carries :class:`~repro.core.results.DecisionEvidence` the full
        provenance record rides along in ``spot-explain/v1`` shape.
        """
        record: Dict[str, object] = {
            "kind": "decision",
            "shard": int(shard),
            "seq": int(seq),
            "stream": str(stream_id),
            "outcome": str(outcome),
            "index": result.index,
            "is_outlier": bool(result.is_outlier),
            "score": float(result.score),
            "subspaces": [list(s.dimensions)
                          for s in result.outlying_subspaces],
        }
        if result.decision is not None:
            record["decision"] = decision_to_dict(result.decision)
        self._append(int(shard), record)

    def record_event(self, kind: str, *, shard: int = 0, **data) -> None:
        """Record one service event (shed/crash/restart/checkpoint/...)."""
        record: Dict[str, object] = {"kind": str(kind), "shard": int(shard)}
        if data:
            record["data"] = {key: data[key] for key in sorted(data)}
        self._append(int(shard), record)

    # ------------------------------------------------------------------ #
    # Introspection / export
    # ------------------------------------------------------------------ #
    def records(self, shard: Optional[int] = None) -> List[Dict[str, object]]:
        """Retained records (one shard or all), oldest first by stamp."""
        with self._lock:
            if shard is not None:
                rows = list(self._rings.get(int(shard), ()))
            else:
                rows = [record for ring in self._rings.values()
                        for record in ring]
        return sorted((dict(row) for row in rows),
                      key=lambda row: row["stamp"])

    def to_dict(self) -> Dict[str, object]:
        """Stable ``spot-flight/v1`` export (per-shard rings, stamp order)."""
        with self._lock:
            shards = {str(shard): [dict(record) for record in ring]
                      for shard, ring in sorted(self._rings.items())}
        return {
            "schema": FLIGHT_SCHEMA,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "shards": shards,
        }

    def write_jsonl(self, path) -> int:
        """Spill every retained record as one JSON object per line.

        Records carry their shard, so the flat stamp-ordered stream loses
        nothing; returns the number of lines written.
        """
        rows = self.records()
        with open(path, "w", encoding="utf-8") as handle:
            for row in rows:
                handle.write(json.dumps(row, sort_keys=True) + "\n")
        return len(rows)

    def memory_footprint(self) -> Dict[str, int]:
        """Approximate resident size of the rings (budgeting estimate)."""
        with self._lock:
            entries = sum(len(ring) for ring in self._rings.values())
            payload = sum(48 * len(record)
                          for ring in self._rings.values()
                          for record in ring)
            shards = len(self._rings)
        return {
            "entries": entries,
            "capacity": self.capacity * shards,
            "approx_bytes": entries * 96 + payload,
        }

    def clear(self) -> None:
        with self._lock:
            for ring in self._rings.values():
                ring.clear()
            self._stamp = 0
            self.dropped = 0


class NullFlightRecorder:
    """Null object: the disabled recorder the service holds by default."""

    enabled = False
    capacity = 0
    dropped = 0

    def record_decision(self, shard, seq, stream_id, outcome, result) -> None:
        pass

    def record_event(self, kind, *, shard: int = 0, **data) -> None:
        pass

    def records(self, shard: Optional[int] = None) -> List[Dict[str, object]]:
        return []

    def to_dict(self) -> Dict[str, object]:
        return {"schema": FLIGHT_SCHEMA, "capacity": 0, "dropped": 0,
                "shards": {}}

    def write_jsonl(self, path) -> int:
        return 0

    def memory_footprint(self) -> Dict[str, int]:
        return {"entries": 0, "capacity": 0, "approx_bytes": 0}

    def clear(self) -> None:
        pass


#: The shared disabled recorder.
NULL_RECORDER = NullFlightRecorder()


def build_diag_payload(*, reason: str, shard: Optional[int],
                       provenance: Mapping[str, object],
                       config: Mapping[str, object],
                       metrics: Mapping[str, object],
                       trace: Mapping[str, object],
                       flight: Mapping[str, object],
                       faults: List[str],
                       slo: Optional[Mapping[str, object]] = None
                       ) -> Dict[str, object]:
    """Assemble one ``spot-diag/v1`` diagnostics bundle."""
    payload: Dict[str, object] = {
        "schema": DIAG_SCHEMA,
        "reason": str(reason),
        "shard": None if shard is None else int(shard),
        "provenance": dict(provenance),
        "config": dict(config),
        "metrics": dict(metrics),
        "trace": dict(trace),
        "flight": dict(flight),
        "faults": [str(entry) for entry in faults],
    }
    if slo is not None:
        payload["slo"] = dict(slo)
    return payload


def validate_diag_payload(payload: Mapping[str, object]) -> Dict[str, object]:
    """Check a diagnostics bundle against the ``spot-diag/v1`` contract.

    Returns the payload (as a plain dict) on success; raises ``ValueError``
    naming the first violated field otherwise.
    """
    if not isinstance(payload, Mapping):
        raise ValueError("diagnostics payload must be a mapping")
    if payload.get("schema") != DIAG_SCHEMA:
        raise ValueError(
            f"expected schema {DIAG_SCHEMA!r}, got {payload.get('schema')!r}")
    if not isinstance(payload.get("reason"), str) or not payload["reason"]:
        raise ValueError("diagnostics reason must be a non-empty string")
    shard = payload.get("shard")
    if shard is not None and not isinstance(shard, int):
        raise ValueError("diagnostics shard must be an int or null")
    for field in ("provenance", "config", "metrics", "trace", "flight"):
        if not isinstance(payload.get(field), Mapping):
            raise ValueError(f"diagnostics {field!r} must be a mapping")
    if not isinstance(payload.get("faults"), list):
        raise ValueError("diagnostics 'faults' must be a list")
    from .metrics import METRICS_SCHEMA
    from .trace import TRACE_SCHEMA

    if payload["metrics"].get("schema") != METRICS_SCHEMA:
        raise ValueError("diagnostics metrics snapshot has the wrong schema")
    if payload["trace"].get("schema") != TRACE_SCHEMA:
        raise ValueError("diagnostics trace export has the wrong schema")
    flight = payload["flight"]
    if flight.get("schema") != FLIGHT_SCHEMA:
        raise ValueError("diagnostics flight export has the wrong schema")
    if not isinstance(flight.get("shards"), Mapping):
        raise ValueError("flight export 'shards' must be a mapping")
    for shard_key, ring in flight["shards"].items():
        if not isinstance(ring, list):
            raise ValueError(f"flight ring {shard_key!r} must be a list")
        for record in ring:
            if not isinstance(record, Mapping) or "kind" not in record \
                    or "stamp" not in record:
                raise ValueError(
                    f"flight ring {shard_key!r} holds a malformed record")
    if "slo" in payload and not isinstance(payload["slo"], Mapping):
        raise ValueError("diagnostics 'slo' must be a mapping when present")
    return dict(payload)
