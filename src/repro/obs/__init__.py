"""Observability: metrics, tracing, provenance, flight recorder, SLOs.

Small, dependency-free pieces that the serving layer threads through every
hot path:

* :mod:`repro.obs.metrics` — typed counters/gauges and bounded streaming
  histograms behind a process-wide (or per-service) :class:`MetricsRegistry`,
  snapshot-able to the stable ``spot-metrics/v1`` JSON schema.
* :mod:`repro.obs.trace` — a lightweight span/event tracer with
  *deterministic* IDs (derived from names + sequence attributes, never from
  wall clocks or thread identity) and a bounded ring buffer, so a replayed
  run emits a diffable, identical span tree.  The :data:`NULL_TRACER`
  null-object makes the disabled path near-free.
* :mod:`repro.obs.history` — the append-only bench-run database under
  ``benchmarks/history/`` plus the regression checker and trend reports
  (ROADMAP item 4).
* :mod:`repro.obs.explain` — decision provenance: the ``spot-explain/v1``
  serialisation of the typed :class:`~repro.core.results.DecisionEvidence`
  both engines attach to scored points, answering "*why* was this point
  flagged?".
* :mod:`repro.obs.recorder` — the flight recorder: bounded per-shard rings
  of recent decisions + service events (``spot-flight/v1``) and the
  crash-time / on-demand diagnostics bundle (``spot-diag/v1``).
* :mod:`repro.obs.slo` — per-tenant latency/shed/quarantine objectives with
  window-based burn-rate classification (``spot-slo/v1``).
"""

from .metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
    get_registry,
)
from .trace import NULL_TRACER, TRACE_SCHEMA, NullTracer, Span, Tracer
from .history import (
    HISTORY_SCHEMA,
    BenchHistory,
    RegressionFinding,
    classify_metric,
    extract_metrics,
)
from .explain import (
    EXPLAIN_SCHEMA,
    decision_from_dict,
    decision_to_dict,
    explain_result,
    format_explanation,
)
from .recorder import (
    DIAG_SCHEMA,
    FLIGHT_SCHEMA,
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    build_diag_payload,
    validate_diag_payload,
)
from .slo import SLO_SCHEMA, SLOObjectives, SLOTracker, classify_burn

__all__ = [
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "HISTORY_SCHEMA",
    "EXPLAIN_SCHEMA",
    "FLIGHT_SCHEMA",
    "DIAG_SCHEMA",
    "SLO_SCHEMA",
    "Counter",
    "Gauge",
    "StreamingHistogram",
    "MetricsRegistry",
    "get_registry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "BenchHistory",
    "RegressionFinding",
    "classify_metric",
    "extract_metrics",
    "decision_to_dict",
    "decision_from_dict",
    "explain_result",
    "format_explanation",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "build_diag_payload",
    "validate_diag_payload",
    "SLOObjectives",
    "SLOTracker",
    "classify_burn",
]
