"""Observability: metrics registry, span tracing, bench-history pipeline.

Three small, dependency-free pieces that the serving layer threads through
every hot path:

* :mod:`repro.obs.metrics` — typed counters/gauges and bounded streaming
  histograms behind a process-wide (or per-service) :class:`MetricsRegistry`,
  snapshot-able to the stable ``spot-metrics/v1`` JSON schema.
* :mod:`repro.obs.trace` — a lightweight span/event tracer with
  *deterministic* IDs (derived from names + sequence attributes, never from
  wall clocks or thread identity) and a bounded ring buffer, so a replayed
  run emits a diffable, identical span tree.  The :data:`NULL_TRACER`
  null-object makes the disabled path near-free.
* :mod:`repro.obs.history` — the append-only bench-run database under
  ``benchmarks/history/`` plus the regression checker and trend reports
  (ROADMAP item 4).
"""

from .metrics import (
    METRICS_SCHEMA,
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
    get_registry,
)
from .trace import NULL_TRACER, TRACE_SCHEMA, NullTracer, Span, Tracer
from .history import (
    HISTORY_SCHEMA,
    BenchHistory,
    RegressionFinding,
    classify_metric,
    extract_metrics,
)

__all__ = [
    "METRICS_SCHEMA",
    "TRACE_SCHEMA",
    "HISTORY_SCHEMA",
    "Counter",
    "Gauge",
    "StreamingHistogram",
    "MetricsRegistry",
    "get_registry",
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "BenchHistory",
    "RegressionFinding",
    "classify_metric",
    "extract_metrics",
]
