"""Typed metrics: counters, gauges and bounded streaming histograms.

The registry replaces the serving layer's hand-rolled stat dicts with named,
labelled instruments that snapshot to one stable JSON schema
(``spot-metrics/v1``).  Two design constraints drive the shapes here:

* **Bounded memory.**  :class:`StreamingHistogram` keeps a sparse dict of
  log-spaced bucket counts (about 40 buckets per decade) plus exact
  count/sum/min/max, so percentile queries cost a few percent of relative
  error while a billion recorded latencies cost the same memory as a
  thousand.  This is what backs the previously unbounded
  :class:`~repro.metrics.throughput.LatencySeries`.
* **Exact counters.**  The robustness block of
  :meth:`~repro.service.service.DetectionService.stats` is built *from* the
  registry, so a metrics snapshot and the stats dict can never disagree
  about a restart or a shed point.

Instruments are plain attribute objects (``.inc()`` / ``.set()`` /
``.record()``); mutation is lock-free by design — every call site in the
serving layer already runs under the service lock, mirroring the historical
``ShardStats`` fields they replace.  Registry *creation* is thread-safe.
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Optional, Tuple

from ..core.exceptions import ConfigurationError

#: Schema tag of every registry snapshot.
METRICS_SCHEMA = "spot-metrics/v1"

#: Log-bucket resolution: buckets per decade.  40/decade puts neighbouring
#: bucket edges ~5.9% apart, so interpolated percentiles land within a few
#: percent of the exact order statistic.
BUCKETS_PER_DECADE = 40


class StreamingHistogram:
    """Sparse log-bucketed histogram with exact count/sum/min/max.

    Values ``<= 0`` land in a dedicated bucket pinned at 0.0 (latencies and
    sizes are non-negative; an exact zero is common for empty timings).
    Percentiles interpolate linearly inside a bucket and are clamped to the
    exact observed ``[min, max]``, so ``percentile(0)``/``percentile(100)``
    are always exact.
    """

    __slots__ = ("_buckets", "_nonpositive", "count", "total", "_min", "_max")

    def __init__(self) -> None:
        self._buckets: Dict[int, int] = {}
        self._nonpositive = 0
        self.count = 0
        self.total = 0.0
        self._min = math.inf
        self._max = -math.inf

    @staticmethod
    def _bucket_of(value: float) -> int:
        return math.floor(math.log10(value) * BUCKETS_PER_DECADE)

    @staticmethod
    def _edges(index: int) -> Tuple[float, float]:
        return (10.0 ** (index / BUCKETS_PER_DECADE),
                10.0 ** ((index + 1) / BUCKETS_PER_DECADE))

    def record(self, value: float) -> None:
        """Fold one observation into the histogram."""
        value = float(value)
        self.count += 1
        self.total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if value <= 0.0:
            self._nonpositive += 1
            return
        index = self._bucket_of(value)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def merge(self, other: "StreamingHistogram") -> None:
        """Fold another histogram's observations into this one."""
        for index, count in other._buckets.items():
            self._buckets[index] = self._buckets.get(index, 0) + count
        self._nonpositive += other._nonpositive
        self.count += other.count
        self.total += other.total
        self._min = min(self._min, other._min)
        self._max = max(self._max, other._max)

    @property
    def min(self) -> float:
        """Smallest observation (0.0 when empty)."""
        return self._min if self.count else 0.0

    @property
    def max(self) -> float:
        """Largest observation (0.0 when empty)."""
        return self._max if self.count else 0.0

    def mean(self) -> float:
        """Exact mean of every observation."""
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile, ``q`` in [0, 100].

        Matches :class:`~repro.metrics.throughput.LatencySeries` semantics
        (linear interpolation over the 0-indexed order statistics) up to the
        bucket resolution; exact at the extremes.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(
                f"percentile must lie in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        if q == 0.0:
            return self._min
        if q == 100.0:
            return self._max
        rank = (q / 100.0) * (self.count - 1)
        # Walk the buckets in value order; inside the covering bucket,
        # spread its observations evenly between the edges.
        cumulative = 0
        value = self._max
        for index, count, low, high in self._ordered():
            if rank < cumulative + count:
                fraction = (rank - cumulative + 0.5) / count
                value = low + (high - low) * min(1.0, max(0.0, fraction))
                break
            cumulative += count
        return min(max(value, self._min), self._max)

    def _ordered(self) -> Iterable[Tuple[int, int, float, float]]:
        if self._nonpositive:
            yield (-(10 ** 9), self._nonpositive, min(0.0, self._min), 0.0)
        for index in sorted(self._buckets):
            low, high = self._edges(index)
            yield (index, self._buckets[index], low, high)

    def as_dict(self) -> Dict[str, float]:
        """Bounded summary view used by registry snapshots."""
        return {
            "count": self.count,
            "mean": self.mean(),
            "min": self.min,
            "max": self.max,
            "p50": self.percentile(50.0),
            "p95": self.percentile(95.0),
            "p99": self.percentile(99.0),
        }


class Counter:
    """Monotonic counter; ``.inc()`` to bump, ``.value`` to read."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name} cannot decrease (inc by {amount})")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Counter({self.name}={self._value})"


class Gauge:
    """Point-in-time value; ``.set()`` to overwrite, ``.value`` to read."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str) -> None:
        self.name = name
        self._value = 0.0

    def set(self, value: float) -> None:
        self._value = float(value)

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self._value})"


def _json_number(value: float):
    """Render counters as ints when they are ints (stable, diffable JSON)."""
    return int(value) if float(value).is_integer() else value


class MetricsRegistry:
    """Named, labelled instruments with a stable JSON snapshot.

    Keys are ``name{label=value,...}`` with labels sorted, so the snapshot
    ordering is deterministic.  ``get-or-create`` accessors make wiring
    trivial: the first caller defines the instrument, later callers share
    it.  External histograms (e.g. the one backing a
    :class:`~repro.metrics.throughput.LatencySeries`) can be adopted via
    :meth:`register_histogram`, so hot paths keep a direct reference and the
    snapshot still sees them.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, StreamingHistogram] = {}

    @staticmethod
    def _key(name: str, labels: Dict[str, object]) -> str:
        if not labels:
            return name
        inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
        return f"{name}{{{inner}}}"

    def counter(self, name: str, **labels) -> Counter:
        key = self._key(name, labels)
        with self._lock:
            instrument = self._counters.get(key)
            if instrument is None:
                instrument = self._counters[key] = Counter(key)
            return instrument

    def gauge(self, name: str, **labels) -> Gauge:
        key = self._key(name, labels)
        with self._lock:
            instrument = self._gauges.get(key)
            if instrument is None:
                instrument = self._gauges[key] = Gauge(key)
            return instrument

    def histogram(self, name: str, **labels) -> StreamingHistogram:
        key = self._key(name, labels)
        with self._lock:
            instrument = self._histograms.get(key)
            if instrument is None:
                instrument = self._histograms[key] = StreamingHistogram()
            return instrument

    def register_histogram(self, name: str, histogram: StreamingHistogram,
                           **labels) -> StreamingHistogram:
        """Adopt an externally owned histogram under a registry key."""
        key = self._key(name, labels)
        with self._lock:
            self._histograms[key] = histogram
        return histogram

    def instrument_count(self) -> int:
        """How many instruments (counters + gauges + histograms) exist."""
        with self._lock:
            return (len(self._counters) + len(self._gauges)
                    + len(self._histograms))

    def total(self, name: str) -> float:
        """Sum of a counter across all of its label variants."""
        prefix = name + "{"
        with self._lock:
            return sum(c.value for key, c in self._counters.items()
                       if key == name or key.startswith(prefix))

    def snapshot(self) -> Dict[str, object]:
        """Stable, JSON-serialisable view of every instrument."""
        with self._lock:
            counters = {key: _json_number(c.value)
                        for key, c in sorted(self._counters.items())}
            gauges = {key: _json_number(g.value)
                      for key, g in sorted(self._gauges.items())}
            histograms = {key: h.as_dict()
                          for key, h in sorted(self._histograms.items())}
        return {
            "schema": METRICS_SCHEMA,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


_GLOBAL_REGISTRY: Optional[MetricsRegistry] = None
_GLOBAL_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry (services default to their own)."""
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        if _GLOBAL_REGISTRY is None:
            _GLOBAL_REGISTRY = MetricsRegistry()
        return _GLOBAL_REGISTRY
