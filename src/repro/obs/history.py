"""The bench-history database: append-only run logs + regression checking.

``BENCH_*.json`` artifacts only ever hold the *latest* run of each
benchmark, so the performance trajectory of the repo used to live in git
archaeology.  This module is the ROADMAP item-4 replacement:

* :class:`BenchHistory` — one append-only JSONL file per bench under
  ``benchmarks/history/`` (``<bench_id>.jsonl``).  Every line is a
  ``spot-bench-history/v1`` entry distilled from a ``spot-bench/v1``
  payload: the run's :func:`~repro.eval.spec.bench_stamp` provenance, seed,
  resolved parameters, and the numeric metrics of every report row keyed by
  the row's string-valued fields.
* **Regression checking** — :meth:`BenchHistory.check` compares the newest
  (or a candidate) run against the median of the recorded history, metric by
  metric.  Metric *direction* is classified from the name
  (:func:`classify_metric`): throughput-shaped metrics must not drop,
  latency-shaped metrics must not grow, within a configurable relative
  tolerance.  Undirected metrics (point counts, generation numbers) are
  ignored.
* **Trend reporting** — :meth:`BenchHistory.trend` renders a metric's value
  per recorded run, the table behind the ``bench-history trend`` CLI verb.

Recording is wired into the harness as ``bench <id> --record``; the CI
``bench-regression`` job runs the checker against the committed history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Optional

from ..core.exceptions import ConfigurationError

#: Schema tag of every history entry.
HISTORY_SCHEMA = "spot-bench-history/v1"

#: Default relative tolerance of the regression checker: a directed metric
#: may move this fraction against its direction before it is flagged.  Bench
#: runs on shared CI hardware are noisy, so the default is deliberately
#: loose — it catches "twice as slow", not "3% slower".
DEFAULT_TOLERANCE = 0.5

#: Name fragments that mark a metric as higher-is-better / lower-is-better.
#: Higher-better tokens are checked first: ``points_per_second`` contains
#: ``second`` but is a throughput.
_HIGHER_TOKENS = ("per_second", "speedup", "throughput", "hit")
_LOWER_TOKENS = ("_ms", "second", "latency", "recovery", "miss")


def classify_metric(name: str) -> Optional[str]:
    """``"higher"``, ``"lower"`` or ``None`` (undirected) for a metric name."""
    lowered = name.lower()
    if any(token in lowered for token in _HIGHER_TOKENS):
        return "higher"
    if any(token in lowered for token in _LOWER_TOKENS):
        return "lower"
    return None


def _row_key(row: Mapping[str, object]) -> str:
    """Deterministic identity of one report row: its string-valued fields."""
    parts = [f"{key}={value}" for key, value in row.items()
             if isinstance(value, str)]
    return ",".join(parts) if parts else "row"


def extract_metrics(payload: Mapping[str, object]
                    ) -> Dict[str, Dict[str, float]]:
    """Numeric metrics of every payload row, keyed by the row's identity."""
    metrics: Dict[str, Dict[str, float]] = {}
    for index, row in enumerate(payload.get("rows", [])):
        key = _row_key(row)
        if key in metrics:  # e.g. repeated grid cells: disambiguate by index
            key = f"{key}#{index}"
        metrics[key] = {
            name: value for name, value in row.items()
            if isinstance(value, (int, float)) and not isinstance(value, bool)
        }
    return metrics


def _median(values: List[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2 == 1:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


@dataclass(frozen=True)
class RegressionFinding:
    """One directed metric that moved against its direction beyond tolerance."""

    bench: str
    row: str
    metric: str
    direction: str
    baseline: float
    candidate: float

    @property
    def ratio(self) -> float:
        """Candidate relative to baseline (1.0 = unchanged)."""
        if self.baseline == 0.0:
            return float("inf") if self.candidate else 1.0
        return self.candidate / self.baseline

    def describe(self) -> str:
        arrow = "dropped" if self.direction == "higher" else "grew"
        return (f"{self.bench} :: {self.row} :: {self.metric} {arrow} "
                f"{self.baseline:g} -> {self.candidate:g} "
                f"({self.ratio:.2f}x)")


class BenchHistory:
    """Append-only per-bench run database under one history directory."""

    def __init__(self, root) -> None:
        self.root = Path(root)

    def path_for(self, bench_id: str) -> Path:
        return self.root / f"{bench_id}.jsonl"

    def benches(self) -> List[str]:
        """Every bench with at least one recorded run, sorted."""
        if not self.root.is_dir():
            return []
        return sorted(path.stem for path in self.root.glob("*.jsonl"))

    def entries(self, bench_id: str) -> List[Dict[str, object]]:
        """All recorded runs of one bench, oldest first."""
        path = self.path_for(bench_id)
        if not path.exists():
            return []
        entries = []
        with open(path) as handle:
            for line_number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    entry = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise ConfigurationError(
                        f"{path}:{line_number}: corrupt history entry: "
                        f"{exc}") from exc
                entries.append(entry)
        return entries

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def record(self, bench_id: str,
               payload: Mapping[str, object]) -> Dict[str, object]:
        """Distil one ``spot-bench/v1`` payload and append it to the log."""
        if payload.get("schema") != "spot-bench/v1":
            raise ConfigurationError(
                f"cannot record payload with schema "
                f"{payload.get('schema')!r} into the bench history")
        entry: Dict[str, object] = {
            "schema": HISTORY_SCHEMA,
            "bench": bench_id,
            "benchmark": payload.get("benchmark"),
            "run_index": len(self.entries(bench_id)),
            "provenance": dict(payload.get("provenance") or {}),
            "seed": payload.get("seed"),
            "params": dict(payload.get("params") or {}),
            "metrics": extract_metrics(payload),
        }
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.path_for(bench_id), "a") as handle:
            handle.write(json.dumps(entry, sort_keys=True) + "\n")
        return entry

    # ------------------------------------------------------------------ #
    # Regression checking
    # ------------------------------------------------------------------ #
    def check_metrics(self, bench_id: str,
                      baseline_entries: List[Mapping[str, object]],
                      candidate_metrics: Mapping[str, Mapping[str, float]],
                      *, tolerance: float = DEFAULT_TOLERANCE
                      ) -> List[RegressionFinding]:
        """Compare candidate metrics against the median of recorded history.

        Only rows and metrics present in both sides are compared, so adding
        a row or a metric never trips the checker; only a directed metric
        moving against its direction beyond ``tolerance`` does.
        """
        if tolerance < 0.0:
            raise ConfigurationError(
                f"tolerance must be >= 0, got {tolerance}")
        findings: List[RegressionFinding] = []
        for row_key, row_metrics in candidate_metrics.items():
            if not isinstance(row_metrics, Mapping):
                continue
            for metric, candidate in row_metrics.items():
                direction = classify_metric(metric)
                if direction is None:
                    continue
                # Older generations may predate a row or a metric (or hold a
                # malformed row value); such entries are simply not baseline
                # for this comparison, never a KeyError/TypeError.
                history = [
                    entry["metrics"][row_key][metric]
                    for entry in baseline_entries
                    if isinstance(entry.get("metrics"), Mapping)
                    and isinstance(entry["metrics"].get(row_key), Mapping)
                    and metric in entry["metrics"][row_key]
                ]
                if not history:
                    continue
                baseline = _median([float(v) for v in history])
                if direction == "higher":
                    regressed = candidate < baseline * (1.0 - tolerance)
                else:
                    regressed = candidate > baseline * (1.0 + tolerance)
                if regressed:
                    findings.append(RegressionFinding(
                        bench=bench_id, row=row_key, metric=metric,
                        direction=direction, baseline=baseline,
                        candidate=float(candidate)))
        return findings

    def check(self, bench_id: str, *,
              candidate: Optional[Mapping[str, object]] = None,
              tolerance: float = DEFAULT_TOLERANCE
              ) -> List[RegressionFinding]:
        """Check one bench: a candidate payload, or the newest recorded run.

        With ``candidate`` (a ``spot-bench/v1`` payload) every recorded
        entry is baseline; without, the newest entry is the candidate and
        the earlier ones are baseline.  Fewer than one baseline entry means
        nothing to compare — an empty finding list.
        """
        entries = self.entries(bench_id)
        if candidate is not None:
            return self.check_metrics(bench_id, entries,
                                      extract_metrics(candidate),
                                      tolerance=tolerance)
        if len(entries) < 2:
            return []
        newest = entries[-1]
        metrics = newest.get("metrics")
        if not isinstance(metrics, Mapping):
            return []
        return self.check_metrics(bench_id, entries[:-1], metrics,
                                  tolerance=tolerance)

    # ------------------------------------------------------------------ #
    # Trend reporting
    # ------------------------------------------------------------------ #
    def metric_names(self, bench_id: str) -> List[str]:
        """Every directed metric name recorded for one bench, sorted."""
        names = set()
        for entry in self.entries(bench_id):
            metrics = entry.get("metrics")
            if not isinstance(metrics, Mapping):
                continue
            for row_metrics in metrics.values():
                if not isinstance(row_metrics, Mapping):
                    continue
                for name in row_metrics:
                    if classify_metric(name) is not None:
                        names.add(name)
        return sorted(names)

    def trend(self, bench_id: str, metric: str) -> List[Dict[str, object]]:
        """One row per recorded run: provenance plus ``metric`` per row key."""
        rows: List[Dict[str, object]] = []
        for entry in self.entries(bench_id):
            row: Dict[str, object] = {
                "run": entry.get("run_index"),
                "git": (entry.get("provenance") or {}).get("git"),
                "dirty": (entry.get("provenance") or {}).get("dirty"),
            }
            metrics = entry.get("metrics")
            if isinstance(metrics, Mapping):
                for row_key, row_metrics in sorted(metrics.items()):
                    if isinstance(row_metrics, Mapping) \
                            and metric in row_metrics:
                        row[row_key] = row_metrics[metric]
            rows.append(row)
        return rows
