"""Decision provenance: serialise and render ``DecisionEvidence``.

The paper's central claim is that projected outliers are caught *in specific
sparse subspaces*; this module is what lets an operator ask "**why** was this
point flagged?" after the fact.  The detector (both engines — the sequential
oracle and the fused batch path) attaches a typed
:class:`~repro.core.results.DecisionEvidence` to every flagged result when
evidence capture is enabled: the active SST version plus, per flagged
subspace, the projected cell key, the decayed density statistics, which rule
fired and by what margin.  Here we give that record a stable JSON shape
(``spot-explain/v1``) for CLI output, flight-recorder spill and diagnostics
bundles, plus round-trip parsing so tests can compare evidence across
engines and across a checkpoint/restore.

Engine parity is contractual: cells, rules, SST versions and subspace sets
are exactly equal between engines; densities/margins agree to 1e-9 (the
batch path evaluates the Poisson tail through ``gammaincc`` when SciPy is
present, the oracle through the series form).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.results import DecisionEvidence, DetectionResult, SubspaceDecision

#: Schema tag of every serialised evidence record.
EXPLAIN_SCHEMA = "spot-explain/v1"

#: Decision rules a subspace decision can name.
RULES = ("rd", "poisson")


def decision_to_dict(decision: DecisionEvidence) -> Dict[str, object]:
    """Stable ``spot-explain/v1`` JSON shape for one evidence record."""
    return {
        "schema": EXPLAIN_SCHEMA,
        "sst_version": decision.sst_version,
        "subspaces": [
            {
                "subspace": list(item.subspace),
                "cell": list(item.cell),
                "rule": item.rule,
                "rd": item.rd,
                "irsd": item.irsd,
                "count": item.count,
                "expected": item.expected,
                "tail_probability": item.tail_probability,
                "threshold": item.threshold,
                "margin": item.margin,
            }
            for item in decision.subspaces
        ],
    }


def decision_from_dict(payload: Dict[str, object]) -> DecisionEvidence:
    """Rebuild a :class:`DecisionEvidence` from :func:`decision_to_dict`."""
    if payload.get("schema") != EXPLAIN_SCHEMA:
        raise ValueError(
            f"expected schema {EXPLAIN_SCHEMA!r}, got {payload.get('schema')!r}")
    subspaces = []
    for item in payload.get("subspaces", []):
        rule = str(item["rule"])
        if rule not in RULES:
            raise ValueError(f"unknown decision rule {rule!r}")
        subspaces.append(SubspaceDecision(
            subspace=tuple(int(d) for d in item["subspace"]),
            cell=tuple(int(c) for c in item["cell"]),
            rule=rule,
            rd=float(item["rd"]),
            irsd=float(item["irsd"]),
            count=float(item["count"]),
            expected=float(item["expected"]),
            tail_probability=float(item["tail_probability"]),
            threshold=float(item["threshold"]),
            margin=float(item["margin"]),
        ))
    return DecisionEvidence(sst_version=int(payload["sst_version"]),
                            subspaces=tuple(subspaces))


def explain_result(result: DetectionResult) -> Dict[str, object]:
    """One scored point as a self-contained explanation payload."""
    record: Dict[str, object] = {
        "schema": EXPLAIN_SCHEMA,
        "index": result.index,
        "point": list(result.point),
        "is_outlier": result.is_outlier,
        "score": result.score,
        "outlying_subspaces": [list(s.dimensions)
                               for s in result.outlying_subspaces],
    }
    if result.decision is not None:
        record["decision"] = decision_to_dict(result.decision)
    return record


def format_explanation(payload: Dict[str, object]) -> str:
    """Human-readable rendering of :func:`explain_result` output."""
    lines: List[str] = []
    verdict = "OUTLIER" if payload.get("is_outlier") else "regular"
    lines.append(f"point #{payload.get('index')}: {verdict} "
                 f"(score={payload.get('score', 0.0):.4f})")
    decision: Optional[Dict[str, object]] = payload.get("decision")
    if decision is None:
        lines.append("  (no decision evidence recorded — "
                     "enable evidence capture to see why)")
        return "\n".join(lines)
    lines.append(f"  SST version {decision.get('sst_version')}")
    for item in decision.get("subspaces", []):
        dims = ",".join(str(d) for d in item["subspace"])
        cell = ",".join(str(c) for c in item["cell"])
        lines.append(
            f"  subspace ({dims}) cell ({cell}): rule={item['rule']} "
            f"rd={item['rd']:.6f} irsd={item['irsd']:.6f} "
            f"count={item['count']:.3f} expected={item['expected']:.3f} "
            f"margin={item['margin']:.3e}")
    return "\n".join(lines)
