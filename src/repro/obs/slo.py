"""Per-tenant SLO tracking: latency / shed / quarantine burn rates.

A fleet serving millions of tenants cannot eyeball raw histograms; it needs
each tenant classified against explicit objectives.  :class:`SLOObjectives`
names the targets (delivery-latency p95, shed fraction, quarantine
fraction); :class:`SLOTracker` folds every delivered point into bounded
per-tenant accumulators — the same :class:`~repro.obs.metrics.StreamingHistogram`
machinery the registry already uses, mirrored into the service registry so
metrics snapshots see them — and classifies each tenant with a window-based
burn rate:

* observations accumulate into a rolling window of ``window_points`` points
  (the previous completed window is kept, so classification always sees
  between one and two windows of trailing data — a tenant that was shedding
  an hour ago but is healthy now decays back to ``ok``);
* the **burn rate** of an objective is observed/objective (p95 over target
  for latency, fraction over budget for shed/quarantine);
* burn >= 1 is a ``breach``, burn >= ``warn_burn_rate`` a ``warn``,
  otherwise ``ok``; a tenant's status is its worst objective, the service's
  status its worst tenant.

The report (``spot-slo/v1``) is surfaced by ``DetectionService.stats()``
and the ``slo`` CLI verb.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from ..core.exceptions import ConfigurationError
from .metrics import MetricsRegistry, StreamingHistogram

#: Schema tag of every SLO report.
SLO_SCHEMA = "spot-slo/v1"

#: Status levels, worst last.
STATUSES = ("ok", "warn", "breach")


@dataclass(frozen=True)
class SLOObjectives:
    """Per-tenant service objectives.

    ``latency_p95_ms`` bounds the delivery latency p95 (submit to result
    delivery); ``max_shed_fraction`` / ``max_quarantine_fraction`` budget
    the fraction of a tenant's points the service may shed or quarantine;
    ``warn_burn_rate`` is the burn threshold separating ``ok`` from
    ``warn``; ``window_points`` sizes the rolling classification window.
    """

    latency_p95_ms: float = 50.0
    max_shed_fraction: float = 0.01
    max_quarantine_fraction: float = 0.01
    warn_burn_rate: float = 0.5
    window_points: int = 200

    def __post_init__(self) -> None:
        if self.latency_p95_ms <= 0:
            raise ConfigurationError("latency_p95_ms must be positive")
        if not 0.0 < self.max_shed_fraction <= 1.0:
            raise ConfigurationError(
                "max_shed_fraction must lie in (0, 1]")
        if not 0.0 < self.max_quarantine_fraction <= 1.0:
            raise ConfigurationError(
                "max_quarantine_fraction must lie in (0, 1]")
        if not 0.0 < self.warn_burn_rate <= 1.0:
            raise ConfigurationError("warn_burn_rate must lie in (0, 1]")
        if self.window_points <= 0:
            raise ConfigurationError("window_points must be positive")

    def to_dict(self) -> Dict[str, object]:
        return {
            "latency_p95_ms": self.latency_p95_ms,
            "max_shed_fraction": self.max_shed_fraction,
            "max_quarantine_fraction": self.max_quarantine_fraction,
            "warn_burn_rate": self.warn_burn_rate,
            "window_points": self.window_points,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SLOObjectives":
        known = {field: payload[field] for field in (
            "latency_p95_ms", "max_shed_fraction", "max_quarantine_fraction",
            "warn_burn_rate", "window_points") if field in payload}
        return cls(**known)


def classify_burn(burn: float, warn_burn_rate: float) -> str:
    """Map one burn rate onto ``ok`` / ``warn`` / ``breach``."""
    if burn >= 1.0:
        return "breach"
    if burn >= warn_burn_rate:
        return "warn"
    return "ok"


def _worst(a: str, b: str) -> str:
    return a if STATUSES.index(a) >= STATUSES.index(b) else b


class _Window:
    """One classification window's accumulators for one tenant."""

    __slots__ = ("points", "shed", "quarantined", "latency")

    def __init__(self) -> None:
        self.points = 0
        self.shed = 0
        self.quarantined = 0
        self.latency = StreamingHistogram()


class SLOTracker:
    """Folds delivery outcomes into per-tenant burn-rate classifications.

    Call sites run under the service lock (mirroring the registry
    instruments they sit next to), so mutation needs no lock of its own.
    """

    def __init__(self, objectives: Optional[SLOObjectives] = None,
                 registry: Optional[MetricsRegistry] = None) -> None:
        self.objectives = objectives or SLOObjectives()
        self._registry = registry
        self._current: Dict[str, _Window] = {}
        self._previous: Dict[str, _Window] = {}
        self._totals: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _window_for(self, stream_id: str) -> _Window:
        window = self._current.get(stream_id)
        if window is None:
            window = self._current[stream_id] = _Window()
            self._totals[stream_id] = {"points": 0, "shed": 0,
                                       "quarantined": 0}
            if self._registry is not None:
                self._registry.register_histogram(
                    "slo.latency_seconds", window.latency, stream=stream_id)
        elif window.points >= self.objectives.window_points:
            self._previous[stream_id] = window
            window = self._current[stream_id] = _Window()
            if self._registry is not None:
                self._registry.register_histogram(
                    "slo.latency_seconds", window.latency, stream=stream_id)
        return window

    def _count(self, stream_id: str, outcome: str) -> _Window:
        window = self._window_for(stream_id)
        window.points += 1
        totals = self._totals[stream_id]
        totals["points"] += 1
        if self._registry is not None:
            self._registry.counter("slo.points", stream=stream_id).inc()
        if outcome in ("shed", "quarantined"):
            key = "shed" if outcome == "shed" else "quarantined"
            setattr(window, key, getattr(window, key) + 1)
            totals[key] += 1
            if self._registry is not None:
                self._registry.counter(f"slo.{key}", stream=stream_id).inc()
        return window

    def observe_delivery(self, stream_id: str, latency_seconds: float,
                         outcome: str = "ok") -> None:
        """Fold one delivered point (ok or degraded) into the window."""
        window = self._count(stream_id, outcome)
        window.latency.record(float(latency_seconds))

    def observe_shed(self, stream_id: str) -> None:
        """Fold one shed point into the window."""
        self._count(stream_id, "shed")

    def observe_quarantined(self, stream_id: str) -> None:
        """Fold one quarantined point into the window."""
        self._count(stream_id, "quarantined")

    # ------------------------------------------------------------------ #
    # Classification / export
    # ------------------------------------------------------------------ #
    def _trailing(self, stream_id: str) -> _Window:
        merged = _Window()
        for source in (self._previous.get(stream_id),
                       self._current.get(stream_id)):
            if source is None:
                continue
            merged.points += source.points
            merged.shed += source.shed
            merged.quarantined += source.quarantined
            merged.latency.merge(source.latency)
        return merged

    def tenant_report(self, stream_id: str) -> Dict[str, object]:
        """Burn rates + status for one tenant over its trailing window."""
        objectives = self.objectives
        window = self._trailing(stream_id)
        p95_ms = 1e3 * window.latency.percentile(95.0)
        latency_burn = p95_ms / objectives.latency_p95_ms
        points = max(1, window.points)
        shed_fraction = window.shed / points
        shed_burn = shed_fraction / objectives.max_shed_fraction
        quarantine_fraction = window.quarantined / points
        quarantine_burn = (quarantine_fraction
                           / objectives.max_quarantine_fraction)
        status = "ok"
        burns = {"latency": latency_burn, "shed": shed_burn,
                 "quarantine": quarantine_burn}
        for burn in burns.values():
            status = _worst(status,
                            classify_burn(burn, objectives.warn_burn_rate))
        totals = self._totals.get(stream_id,
                                  {"points": 0, "shed": 0, "quarantined": 0})
        return {
            "status": status,
            "window_points": window.points,
            "latency_p95_ms": p95_ms,
            "latency_burn": latency_burn,
            "shed_fraction": shed_fraction,
            "shed_burn": shed_burn,
            "quarantine_fraction": quarantine_fraction,
            "quarantine_burn": quarantine_burn,
            "total_points": totals["points"],
            "total_shed": totals["shed"],
            "total_quarantined": totals["quarantined"],
        }

    def report(self) -> Dict[str, object]:
        """Stable ``spot-slo/v1`` report: every tenant + the worst status."""
        tenants = {stream_id: self.tenant_report(stream_id)
                   for stream_id in sorted(self._totals)}
        status = "ok"
        for entry in tenants.values():
            status = _worst(status, entry["status"])
        return {
            "schema": SLO_SCHEMA,
            "objectives": self.objectives.to_dict(),
            "status": status,
            "tenants": tenants,
        }
