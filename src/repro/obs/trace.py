"""Span/event tracing with deterministic IDs and a bounded ring buffer.

The tracer answers "what did the service *do*" — which batches were scored,
what the supervisor replayed after a crash, when a checkpoint was written —
without perturbing "how fast".  Two properties carry the design:

* **Deterministic identity.**  A span's ID derives from its name plus its
  identity attributes (sequence numbers, shard IDs, generation counters),
  never from wall clocks, thread IDs or allocation order.  Replaying a
  recording therefore emits the *identical* span tree, so traces are
  diffable across runs and across a crash-recovery — the property
  ``tests/test_obs_service.py`` pins.  Timing (``duration_ms``) is recorded
  but excluded from identity.
* **Near-zero disabled cost.**  The serving layer holds a tracer reference
  unconditionally and guards per-point work with a single boolean;
  :data:`NULL_TRACER` makes every span call a constant-time no-op returning
  one shared context manager, so the instrumented hot path costs nothing
  measurable when tracing is off (the bench payloads record this).

Spans are stored flat in a bounded deque (oldest evicted first, with a
dropped-span counter); :meth:`Tracer.tree` rebuilds the parent/child nesting
on demand and :meth:`Tracer.to_dict` exports the stable ``spot-trace/v1``
schema.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Dict, List, Optional

#: Schema tag of every trace export.
TRACE_SCHEMA = "spot-trace/v1"


def _format_attr(value) -> str:
    if isinstance(value, float):
        return format(value, "g")
    return str(value)


class Span:
    """One traced operation; use as a context manager for timed regions.

    The ID is fixed at creation from ``name`` plus the creation-time
    attributes; :meth:`annotate` attaches extra *data* attributes afterwards
    without changing identity (recovery outcomes, counts discovered late).
    """

    __slots__ = ("tracer", "name", "span_id", "parent_id", "attrs", "data",
                 "duration_ms", "_started")

    def __init__(self, tracer: "Tracer", name: str, span_id: str,
                 parent_id: Optional[str], attrs: Dict[str, object]) -> None:
        self.tracer = tracer
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.attrs = attrs
        self.data: Dict[str, object] = {}
        self.duration_ms: Optional[float] = None
        self._started: Optional[float] = None

    def annotate(self, **data) -> "Span":
        """Attach non-identity data attributes (kept out of the span ID)."""
        self.data.update(data)
        return self

    def __enter__(self) -> "Span":
        import time

        self._started = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        import time

        if self._started is not None:
            self.duration_ms = 1e3 * (time.perf_counter() - self._started)
        if exc_type is not None:
            self.data.setdefault("error", exc_type.__name__)
        self.tracer._commit(self)
        return False

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "span_id": self.span_id,
            "name": self.name,
            "parent_id": self.parent_id,
            "attrs": dict(self.attrs),
        }
        if self.data:
            record["data"] = dict(self.data)
        if self.duration_ms is not None:
            record["duration_ms"] = round(self.duration_ms, 3)
        return record


class Tracer:
    """Collects spans and events into a bounded, deterministic ring buffer."""

    #: A tracer that records; the service checks this to skip per-point work.
    enabled = True

    def __init__(self, capacity: int = 8192) -> None:
        self.capacity = capacity
        self._lock = threading.Lock()
        self._ring: "deque[Span]" = deque(maxlen=capacity)
        self._occurrences: Dict[str, int] = {}
        self.dropped = 0

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def _make_id(self, name: str, attrs: Dict[str, object]) -> str:
        inner = ",".join(f"{k}={_format_attr(attrs[k])}"
                         for k in sorted(attrs))
        base = f"{name}[{inner}]" if inner else name
        with self._lock:
            n = self._occurrences.get(base, 0)
            self._occurrences[base] = n + 1
        return base if n == 0 else f"{base}#{n}"

    def span(self, name: str, parent: Optional[Span] = None, **attrs) -> Span:
        """Open a span; enter it (``with``) to time the region it covers."""
        parent_id = parent.span_id if parent is not None else None
        return Span(self, name, self._make_id(name, attrs), parent_id, attrs)

    def event(self, name: str, parent: Optional[Span] = None,
              **attrs) -> Span:
        """Record a zero-duration span immediately."""
        span = self.span(name, parent=parent, **attrs)
        self._commit(span)
        return span

    def _commit(self, span: Span) -> None:
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(span)

    # ------------------------------------------------------------------ #
    # Introspection / export
    # ------------------------------------------------------------------ #
    def spans(self) -> List[Span]:
        """Recorded spans, sorted by deterministic ID."""
        with self._lock:
            recorded = list(self._ring)
        return sorted(recorded, key=lambda span: span.span_id)

    def find(self, name: str) -> List[Span]:
        """Recorded spans with the given name, sorted by ID."""
        return [span for span in self.spans() if span.name == name]

    def tree(self) -> List[Dict[str, object]]:
        """Nested parent/child view, deterministic and timing-free.

        This is the diffable shape: two runs of the same recording produce
        equal trees (IDs, names, identity attrs), regardless of timing.
        """
        spans = self.spans()
        nodes = {span.span_id: {"span_id": span.span_id, "name": span.name,
                                "attrs": dict(span.attrs), "children": []}
                 for span in spans}
        roots = []
        for span in spans:
            node = nodes[span.span_id]
            parent = nodes.get(span.parent_id) if span.parent_id else None
            if parent is not None:
                parent["children"].append(node)
            else:
                roots.append(node)
        return roots

    def to_dict(self) -> Dict[str, object]:
        """Stable ``spot-trace/v1`` export (flat spans, sorted by ID)."""
        return {
            "schema": TRACE_SCHEMA,
            "capacity": self.capacity,
            "dropped": self.dropped,
            "spans": [span.to_dict() for span in self.spans()],
        }

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._occurrences.clear()
            self.dropped = 0

    def memory_footprint(self) -> Dict[str, int]:
        """Approximate resident size of the span ring.

        The byte figure prices each retained span at its ID/attr payload
        plus a fixed per-object overhead — an operator budgeting estimate,
        not an exact ``sys.getsizeof`` walk.
        """
        with self._lock:
            spans = len(self._ring)
            payload = sum(
                len(span.span_id) + 16 * (len(span.attrs) + len(span.data))
                for span in self._ring)
        return {
            "spans": spans,
            "capacity": self.capacity,
            "approx_bytes": spans * 120 + payload,
        }


class _NullSpan:
    """Shared no-op span: every disabled call returns this one object."""

    __slots__ = ()
    span_id = None
    name = ""
    parent_id = None
    attrs: Dict[str, object] = {}
    data: Dict[str, object] = {}
    duration_ms = None

    def annotate(self, **data) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Null object: the disabled tracer the service holds by default.

    Every method is a constant-time no-op returning shared singletons, so
    instrumented code never branches on "is tracing on" for span-shaped
    calls (only per-point event emission is boolean-guarded, being the one
    spot where even argument packing would be measurable).
    """

    enabled = False
    capacity = 0
    dropped = 0

    def span(self, name: str, parent=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, parent=None, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def spans(self) -> List[Span]:
        return []

    def find(self, name: str) -> List[Span]:
        return []

    def tree(self) -> List[Dict[str, object]]:
        return []

    def to_dict(self) -> Dict[str, object]:
        return {"schema": TRACE_SCHEMA, "capacity": 0, "dropped": 0,
                "spans": []}

    def clear(self) -> None:
        pass

    def memory_footprint(self) -> Dict[str, int]:
        return {"spans": 0, "capacity": 0, "approx_bytes": 0}


#: The shared disabled tracer.
NULL_TRACER = NullTracer()
