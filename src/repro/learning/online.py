"""Online adaptation: CS self-evolution, CS relearning and OS growth.

Three of SPOT's mechanisms for coping with the dynamics of data streams run
*inside* the detection stage and therefore have to be cheap:

* **Self-evolution of CS** — periodically, new candidate subspaces are created
  by crossovering and mutating the current top CS subspaces; the old and new
  members are then re-ranked against the recent data and the best ones form
  the new CS.
* **Periodic relearning of CS** — optionally, a fresh MOGA search (seeded by
  the current CS) is run over the reservoir and replaces CS wholesale — the
  online analogue of re-running the unsupervised learning stage.
* **OS growth** — every detected outlier is stored and its top sparse
  subspaces (found by a small MOGA run targeted at the outlier) are added to
  the OS component, so the template's detecting ability keeps improving as
  outliers accumulate.

All three operate on a bounded reservoir of recent points (the online
stand-in for the offline training batch) so their cost does not grow with
the stream, and all three are split into the request / evaluate / apply
phases of :mod:`repro.learning.requests`:

* the *request* phase captures a reservoir snapshot and consumes whatever
  randomness the mechanism owns (the self-evolution offspring draw, the
  growth/relearn seed counters) — it is always executed at the trigger
  position;
* the *evaluate* phase is a pure function and may run inline (the default,
  synchronous behaviour of :meth:`SelfEvolution.evolve` /
  :meth:`OutlierDrivenGrowth.grow`) or remotely on the learning service's
  worker pool;
* the *apply* phase folds the publication into the SST — at the same
  position the synchronous path would, which is what keeps the asynchronous
  mode decision-identical.

Evaluations are shared across searches through a per-mechanism
:class:`~repro.moga.objectives.ObjectiveMemo` keyed by the reservoir
version: consecutive searches between reservoir changes reuse each other's
objective vectors instead of recomputing them.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..core.config import SPOTConfig
from ..core.exceptions import ConfigurationError
from ..core.grid import Grid
from ..core.sst import RankedSubspace, SparseSubspaceTemplate
from ..core.subspace import Subspace
from ..moga import (
    Chromosome,
    ObjectiveMemo,
    make_offspring,
    make_sparsity_objectives,
)
from .requests import (
    EvolutionRequest,
    GrowthRequest,
    LearnPublication,
    RelearnRequest,
    ReservoirSnapshot,
    evaluate_learn_request,
)


class RecentPointsBuffer:
    """Fixed-capacity reservoir of the most recent stream points.

    The monotonic :attr:`version` counts every point ever added; snapshots
    taken at the same version hold identical contents, which is what the
    learning service keys its shared objective contexts on.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self._buffer: Deque[Tuple[float, ...]] = deque(maxlen=capacity)
        self._version = 0

    def add(self, point: Sequence[float]) -> None:
        """Record one point (older points fall off the end)."""
        self._buffer.append(tuple(float(v) for v in point))
        self._version += 1

    def extend(self, points: Iterable[Sequence[float]]) -> None:
        """Record a chunk of points in stream order (one version bump each)."""
        append = self._buffer.append
        count = 0
        for point in points:
            append(tuple(float(v) for v in point))
            count += 1
        self._version += count

    def extend_prepared(self, points: Sequence[Tuple[float, ...]]) -> None:
        """Record already-normalised float tuples (the batch detection path
        hands over ``ndarray.tolist()`` output, so per-value coercion would
        be pure overhead)."""
        self._buffer.extend(points)
        self._version += len(points)

    def snapshot(self) -> List[Tuple[float, ...]]:
        """The buffered points, oldest first."""
        return list(self._buffer)

    def versioned_snapshot(self) -> ReservoirSnapshot:
        """An immutable snapshot tagged with the current version."""
        return ReservoirSnapshot(version=self._version,
                                 points=tuple(self._buffer))

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def capacity(self) -> int:
        """Maximum number of points retained."""
        return self._buffer.maxlen or 0

    @property
    def version(self) -> int:
        """Total number of points ever added (monotonic)."""
        return self._version

    def state_to_dict(self, array_mode: str = "json") -> dict:
        """Snapshot for detector checkpointing (capacity + buffered points).

        ``array_mode`` other than ``"json"`` exports the reservoir as one
        ``(n, phi)`` float64 matrix instead of nested lists — the reservoir
        is the largest non-cell part of a checkpoint, and the array form
        keeps ``.npz`` snapshot cost independent of its fill level.  The
        matrix is freshly built either way, so "view" and "copy" coincide.
        """
        if array_mode == "json" or not self._buffer:
            points: object = [list(point) for point in self._buffer]
        else:
            points = np.asarray(list(self._buffer), dtype=np.float64)
        return {"capacity": self.capacity,
                "version": self._version,
                "points": points}

    @classmethod
    def from_state(cls, payload: dict) -> "RecentPointsBuffer":
        """Rebuild a buffer from :meth:`state_to_dict` output."""
        points = payload["points"]
        if isinstance(points, np.ndarray):
            points = points.tolist()
        buffer = cls(int(payload["capacity"]))
        for point in points:
            buffer.add(point)
        buffer._version = int(payload.get("version", len(points)))
        return buffer


def _memo_view(memo: ObjectiveMemo, snapshot: ReservoirSnapshot,
               target_key: object):
    """Memo view for a snapshot, or ``None`` for unversioned (ad-hoc) calls."""
    if snapshot.version < 0:
        return None
    return memo.view(snapshot.version, target_key)


def _as_snapshot(recent_points: Sequence[Sequence[float]],
                 version: Optional[int]) -> ReservoirSnapshot:
    """Wrap raw recent points; ``version=None`` marks the snapshot ad-hoc.

    A ready-made :class:`ReservoirSnapshot` (the detector passes
    :meth:`RecentPointsBuffer.versioned_snapshot`) is passed through as is —
    its points are already canonical float tuples.  Ad-hoc snapshots
    (version -1) never touch the cross-search memo — the caller gave no
    freshness key, so reusing vectors would be unsound.
    """
    if isinstance(recent_points, ReservoirSnapshot):
        return recent_points
    return ReservoirSnapshot(
        version=-1 if version is None else int(version),
        points=tuple(tuple(float(v) for v in p) for p in recent_points))


class SelfEvolution:
    """Periodic online re-generation and re-ranking of the CS component.

    Candidate re-scoring against the recent-points reservoir runs on the
    objective implementation ``config.engine`` selects; both engines rank
    candidates identically (exact objective parity), so the evolved CS does
    not depend on the engine.
    """

    def __init__(self, config: SPOTConfig, grid: Grid) -> None:
        self._config = config
        self._grid = grid
        self._rng = random.Random(config.random_seed + 977)
        self._rounds = 0
        self._last_memory: Dict[str, int] = {}
        self.memo = ObjectiveMemo()

    @property
    def rounds(self) -> int:
        """Number of evolution rounds executed so far."""
        return self._rounds

    @property
    def last_memory_footprint(self) -> Dict[str, int]:
        """Objective memo / batch memory of the most recent evolution round."""
        return dict(self._last_memory)

    def state_to_dict(self) -> dict:
        """Snapshot for detector checkpointing (round count + RNG state).

        The Mersenne-Twister state is captured so a restored detector draws
        the exact same crossover/mutation decisions an uninterrupted run
        would — that is what keeps resumed streams decision-identical.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {"rounds": self._rounds,
                "rng_state": [version, list(internal), gauss_next]}

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_to_dict`."""
        self._rounds = int(payload["rounds"])
        version, internal, gauss_next = payload["rng_state"]
        self._rng.setstate((version, tuple(internal), gauss_next))

    def propose(self, sst: SparseSubspaceTemplate,
                recent_points: Sequence[Sequence[float]], *,
                version: Optional[int] = None,
                position: int = 0) -> Optional[EvolutionRequest]:
        """Draw one round's offspring and package the re-ranking request.

        Consumes the component's RNG exactly as the synchronous round would;
        returns ``None`` (no RNG use, no round counted) when the round would
        be a no-op (fewer than two CS members or too little recent data).
        """
        current = sst.clustering_ranked
        if len(current) < 2 or len(recent_points) < 10:
            return None
        self._rounds += 1
        config = self._config
        phi = sst.phi

        parents = [Chromosome.from_subspace(item.subspace, phi)
                   for item in current]
        candidates: List[Subspace] = []
        for i in range(0, len(parents) - 1, 2):
            child_a, child_b = make_offspring(
                parents[i], parents[i + 1], self._rng,
                crossover_rate=config.moga_crossover_rate,
                mutation_rate=max(config.moga_mutation_rate, 0.05),
                max_dimension=config.moga_max_dimension,
            )
            candidates.append(child_a.to_subspace())
            candidates.append(child_b.to_subspace())

        return EvolutionRequest(
            request_id=f"self_evolution-{self._rounds}",
            position=position,
            incumbents=tuple(item.subspace for item in current),
            candidates=tuple(candidates),
            capacity=sst.cs_capacity,
            engine=config.engine,
            snapshot=_as_snapshot(recent_points, version),
        )

    def evaluate(self, request: EvolutionRequest) -> LearnPublication:
        """Run the re-ranking inline, sharing this component's memo."""
        objectives = make_sparsity_objectives(
            request.snapshot.points, self._grid, engine=request.engine,
            memo=_memo_view(self.memo, request.snapshot, request.target_key))
        return evaluate_learn_request(request, self._grid,
                                      objectives=objectives)

    def apply(self, sst: SparseSubspaceTemplate, request: EvolutionRequest,
              publication: LearnPublication) -> int:
        """Install the published CS; returns how many new subspaces joined."""
        kept = [RankedSubspace(subspace=subspace, score=score)
                for subspace, score in publication.ranked]
        sst.replace_clustering_ranked(kept)
        self._last_memory = dict(publication.memory)
        incumbents = set(request.incumbents)
        kept_subspaces = {item.subspace for item in kept}
        return sum(1 for subspace in kept_subspaces
                   if subspace not in incumbents)

    def evolve(self, sst: SparseSubspaceTemplate,
               recent_points: Sequence[Sequence[float]], *,
               version: Optional[int] = None) -> int:
        """Run one full synchronous round; returns how many new subspaces joined CS.

        The current CS members are crossovered and mutated pairwise to produce
        a batch of candidate subspaces; candidates and incumbents are then
        re-ranked against ``recent_points`` and the best ``cs_capacity`` of
        them become the new CS.  With no CS members or too little recent data
        the round is a no-op.  ``version`` (the reservoir version the points
        were snapshotted at) unlocks cross-search memo reuse.
        """
        request = self.propose(sst, recent_points, version=version)
        if request is None:
            return 0
        return self.apply(sst, request, self.evaluate(request))


class OutlierDrivenGrowth:
    """Adds the sparse subspaces of detected outliers to the OS component.

    Each per-outlier MOGA search runs on the objective implementation
    ``config.engine`` selects; the retained subspaces are engine-independent.
    """

    def __init__(self, config: SPOTConfig, grid: Grid) -> None:
        self._config = config
        self._grid = grid
        self._searches = 0
        self._last_memory: Dict[str, int] = {}
        self.memo = ObjectiveMemo()

    @property
    def searches(self) -> int:
        """Number of per-outlier MOGA searches run so far."""
        return self._searches

    @property
    def last_memory_footprint(self) -> Dict[str, int]:
        """Objective memo / batch memory of the most recent outlier search."""
        return dict(self._last_memory)

    def state_to_dict(self) -> dict:
        """Snapshot for detector checkpointing.

        The search counter is the component's only state: each MOGA run is
        seeded from ``random_seed + 5000 + searches``, so restoring the
        counter restores the whole future search sequence.
        """
        return {"searches": self._searches}

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_to_dict`."""
        self._searches = int(payload["searches"])

    def begin(self, outlier: Sequence[float],
              recent_points: Sequence[Sequence[float]], *,
              subspaces_per_outlier: int = 2,
              version: Optional[int] = None,
              position: int = 0) -> Optional[GrowthRequest]:
        """Claim one search slot (counter + seed) and package the request.

        Returns ``None`` — without consuming a seed — when the reservoir is
        too small, mirroring the synchronous early-out.
        """
        if len(recent_points) < 10:
            return None
        config = self._config
        self._searches += 1
        return GrowthRequest(
            request_id=f"os_growth-{self._searches}",
            position=position,
            outlier=tuple(float(v) for v in outlier),
            seed=config.random_seed + 5000 + self._searches,
            top_k=subspaces_per_outlier,
            population_size=max(10, config.moga_population // 2),
            generations=max(5, config.moga_generations // 3),
            mutation_rate=config.moga_mutation_rate,
            crossover_rate=config.moga_crossover_rate,
            max_dimension=config.moga_max_dimension,
            engine=config.engine,
            snapshot=_as_snapshot(recent_points, version),
        )

    def evaluate(self, request: GrowthRequest) -> LearnPublication:
        """Run the per-outlier search inline, sharing this component's memo."""
        objectives = make_sparsity_objectives(
            request.snapshot.points, self._grid, engine=request.engine,
            target_points=request.target_points,
            memo=_memo_view(self.memo, request.snapshot, request.target_key))
        return evaluate_learn_request(request, self._grid,
                                      objectives=objectives)

    def apply(self, sst: SparseSubspaceTemplate, request: GrowthRequest,
              publication: LearnPublication) -> int:
        """Fold the published subspaces into OS; returns how many were retained."""
        self._last_memory = dict(publication.memory)
        added = 0
        for subspace, score in publication.ranked:
            if sst.add_outlier_driven_subspace(subspace, score):
                added += 1
        return added

    def grow(self, sst: SparseSubspaceTemplate,
             outlier: Sequence[float],
             recent_points: Sequence[Sequence[float]],
             *,
             subspaces_per_outlier: int = 2,
             version: Optional[int] = None) -> int:
        """Search the outlier's sparse subspaces and fold them into OS.

        Returns the number of subspaces that were actually retained by OS
        (0 when the buffer is too small or the subspaces were already known).
        """
        request = self.begin(outlier, recent_points,
                             subspaces_per_outlier=subspaces_per_outlier,
                             version=version)
        if request is None:
            return 0
        return self.apply(sst, request, self.evaluate(request))


class PeriodicRelearn:
    """Periodic wholesale relearning of CS from the reservoir.

    Where self-evolution nudges CS with GA offspring of its own members, a
    relearn round runs a full (budgeted) MOGA search over the current
    reservoir — seeded by the incumbent CS so known-good subspaces compete —
    and replaces CS with the search's top ranked archive.  Disabled unless
    ``SPOTConfig.relearn_period`` is positive.
    """

    def __init__(self, config: SPOTConfig, grid: Grid) -> None:
        self._config = config
        self._grid = grid
        self._rounds = 0
        self._last_memory: Dict[str, int] = {}
        self.memo = ObjectiveMemo()

    @property
    def rounds(self) -> int:
        """Number of relearn rounds executed so far."""
        return self._rounds

    @property
    def last_memory_footprint(self) -> Dict[str, int]:
        """Objective memo / batch memory of the most recent relearn round."""
        return dict(self._last_memory)

    def state_to_dict(self) -> dict:
        """Snapshot for detector checkpointing (the seed counter)."""
        return {"rounds": self._rounds}

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_to_dict`."""
        self._rounds = int(payload["rounds"])

    def propose(self, sst: SparseSubspaceTemplate,
                recent_points: Sequence[Sequence[float]], *,
                version: Optional[int] = None,
                position: int = 0) -> Optional[RelearnRequest]:
        """Claim one relearn round and package the request (or ``None``)."""
        if len(recent_points) < 10 or sst.cs_capacity <= 0:
            return None
        self._rounds += 1
        config = self._config
        return RelearnRequest(
            request_id=f"relearn-{self._rounds}",
            position=position,
            incumbents=sst.clustering_subspaces,
            seed=config.random_seed + 9000 + self._rounds,
            capacity=sst.cs_capacity,
            population_size=config.moga_population,
            generations=config.moga_generations,
            mutation_rate=config.moga_mutation_rate,
            crossover_rate=config.moga_crossover_rate,
            max_dimension=config.moga_max_dimension,
            engine=config.engine,
            snapshot=_as_snapshot(recent_points, version),
        )

    def evaluate(self, request: RelearnRequest) -> LearnPublication:
        """Run the relearn search inline, sharing this component's memo."""
        objectives = make_sparsity_objectives(
            request.snapshot.points, self._grid, engine=request.engine,
            memo=_memo_view(self.memo, request.snapshot, request.target_key))
        return evaluate_learn_request(request, self._grid,
                                      objectives=objectives)

    def apply(self, sst: SparseSubspaceTemplate, request: RelearnRequest,
              publication: LearnPublication) -> int:
        """Replace CS with the published ranking; returns the new-member count."""
        self._last_memory = dict(publication.memory)
        incumbents = set(request.incumbents)
        sst.set_clustering(publication.ranked)
        return sum(1 for subspace in sst.clustering_subspaces
                   if subspace not in incumbents)

    def relearn(self, sst: SparseSubspaceTemplate,
                recent_points: Sequence[Sequence[float]], *,
                version: Optional[int] = None) -> int:
        """Run one full synchronous relearn round; returns the new-member count."""
        request = self.propose(sst, recent_points, version=version)
        if request is None:
            return 0
        return self.apply(sst, request, self.evaluate(request))
