"""Online adaptation: CS self-evolution and OS growth during detection.

Two of SPOT's mechanisms for coping with the dynamics of data streams run
*inside* the detection stage and therefore have to be cheap:

* **Self-evolution of CS** — periodically, new candidate subspaces are created
  by crossovering and mutating the current top CS subspaces; the old and new
  members are then re-ranked against the recent data and the best ones form
  the new CS.
* **OS growth** — every detected outlier is stored and its top sparse
  subspaces (found by a small MOGA run targeted at the outlier) are added to
  the OS component, so the template's detecting ability keeps improving as
  outliers accumulate.

Both operate on a bounded reservoir of recent points (the online stand-in for
the offline training batch) so their cost does not grow with the stream.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from ..core.config import SPOTConfig
from ..core.exceptions import ConfigurationError
from ..core.grid import Grid
from ..core.sst import RankedSubspace, SparseSubspaceTemplate
from ..core.subspace import Subspace
from ..moga import (
    Chromosome,
    make_offspring,
    make_sparsity_objectives,
    rank_sparse_subspaces,
)


class RecentPointsBuffer:
    """Fixed-capacity reservoir of the most recent stream points."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self._buffer: Deque[Tuple[float, ...]] = deque(maxlen=capacity)

    def add(self, point: Sequence[float]) -> None:
        """Record one point (older points fall off the end)."""
        self._buffer.append(tuple(float(v) for v in point))

    def snapshot(self) -> List[Tuple[float, ...]]:
        """The buffered points, oldest first."""
        return list(self._buffer)

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def capacity(self) -> int:
        """Maximum number of points retained."""
        return self._buffer.maxlen or 0

    def state_to_dict(self) -> dict:
        """Snapshot for detector checkpointing (capacity + buffered points)."""
        return {"capacity": self.capacity,
                "points": [list(point) for point in self._buffer]}

    @classmethod
    def from_state(cls, payload: dict) -> "RecentPointsBuffer":
        """Rebuild a buffer from :meth:`state_to_dict` output."""
        buffer = cls(int(payload["capacity"]))
        for point in payload["points"]:
            buffer.add(point)
        return buffer


class SelfEvolution:
    """Periodic online re-generation and re-ranking of the CS component.

    Candidate re-scoring against the recent-points reservoir runs on the
    objective implementation ``config.engine`` selects; both engines rank
    candidates identically (exact objective parity), so the evolved CS does
    not depend on the engine.
    """

    def __init__(self, config: SPOTConfig, grid: Grid) -> None:
        self._config = config
        self._grid = grid
        self._rng = random.Random(config.random_seed + 977)
        self._rounds = 0
        self._last_memory: Dict[str, int] = {}

    @property
    def rounds(self) -> int:
        """Number of evolution rounds executed so far."""
        return self._rounds

    @property
    def last_memory_footprint(self) -> Dict[str, int]:
        """Objective memo / batch memory of the most recent evolution round."""
        return dict(self._last_memory)

    def state_to_dict(self) -> dict:
        """Snapshot for detector checkpointing (round count + RNG state).

        The Mersenne-Twister state is captured so a restored detector draws
        the exact same crossover/mutation decisions an uninterrupted run
        would — that is what keeps resumed streams decision-identical.
        """
        version, internal, gauss_next = self._rng.getstate()
        return {"rounds": self._rounds,
                "rng_state": [version, list(internal), gauss_next]}

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_to_dict`."""
        self._rounds = int(payload["rounds"])
        version, internal, gauss_next = payload["rng_state"]
        self._rng.setstate((version, tuple(internal), gauss_next))

    def evolve(self, sst: SparseSubspaceTemplate,
               recent_points: Sequence[Sequence[float]]) -> int:
        """Run one self-evolution round; returns how many new subspaces joined CS.

        The current CS members are crossovered and mutated pairwise to produce
        a batch of candidate subspaces; candidates and incumbents are then
        re-ranked against ``recent_points`` and the best ``cs_capacity`` of
        them become the new CS.  With no CS members or too little recent data
        the round is a no-op.
        """
        current = sst.clustering_ranked
        if len(current) < 2 or len(recent_points) < 10:
            return 0
        self._rounds += 1
        config = self._config
        phi = sst.phi

        parents = [Chromosome.from_subspace(item.subspace, phi) for item in current]
        candidates: List[Subspace] = []
        for i in range(0, len(parents) - 1, 2):
            child_a, child_b = make_offspring(
                parents[i], parents[i + 1], self._rng,
                crossover_rate=config.moga_crossover_rate,
                mutation_rate=max(config.moga_mutation_rate, 0.05),
                max_dimension=config.moga_max_dimension,
            )
            candidates.append(child_a.to_subspace())
            candidates.append(child_b.to_subspace())

        objectives = make_sparsity_objectives(recent_points, self._grid,
                                              engine=config.engine)
        incumbents = {item.subspace for item in current}
        # Prime the memo cache with one population-sized evaluation pass —
        # on the vectorized engine the whole incumbent + candidate pool is
        # scored in a few fused array sweeps instead of one dict walk each.
        pool = [item.subspace for item in current]
        pool.extend(c for c in candidates if c not in incumbents)
        objectives.evaluate_population(pool)
        rescored: List[RankedSubspace] = [
            RankedSubspace(subspace=item.subspace,
                           score=objectives.sparsity_score(item.subspace))
            for item in current
        ]
        new_members: List[RankedSubspace] = []
        for candidate in candidates:
            if candidate in incumbents:
                continue
            incumbents.add(candidate)
            new_members.append(
                RankedSubspace(subspace=candidate,
                               score=objectives.sparsity_score(candidate))
            )

        combined = sorted(rescored + new_members, key=lambda item: item.score)
        kept = combined[: sst.cs_capacity]
        sst.replace_clustering_ranked(kept)
        self._last_memory = dict(objectives.memory_footprint())
        kept_subspaces = {item.subspace for item in kept}
        return sum(1 for item in new_members if item.subspace in kept_subspaces)


class OutlierDrivenGrowth:
    """Adds the sparse subspaces of detected outliers to the OS component.

    Each per-outlier MOGA search runs on the objective implementation
    ``config.engine`` selects; the retained subspaces are engine-independent.
    """

    def __init__(self, config: SPOTConfig, grid: Grid) -> None:
        self._config = config
        self._grid = grid
        self._searches = 0
        self._last_memory: Dict[str, int] = {}

    @property
    def searches(self) -> int:
        """Number of per-outlier MOGA searches run so far."""
        return self._searches

    @property
    def last_memory_footprint(self) -> Dict[str, int]:
        """Objective memo / batch memory of the most recent outlier search."""
        return dict(self._last_memory)

    def state_to_dict(self) -> dict:
        """Snapshot for detector checkpointing.

        The search counter is the component's only state: each MOGA run is
        seeded from ``random_seed + 5000 + searches``, so restoring the
        counter restores the whole future search sequence.
        """
        return {"searches": self._searches}

    def restore_state(self, payload: dict) -> None:
        """Inverse of :meth:`state_to_dict`."""
        self._searches = int(payload["searches"])

    def grow(self, sst: SparseSubspaceTemplate,
             outlier: Sequence[float],
             recent_points: Sequence[Sequence[float]],
             *,
             subspaces_per_outlier: int = 2) -> int:
        """Search the outlier's sparse subspaces and fold them into OS.

        Returns the number of subspaces that were actually retained by OS
        (0 when the buffer is too small or the subspaces were already known).
        """
        if len(recent_points) < 10:
            return 0
        config = self._config
        self._searches += 1
        objectives = make_sparsity_objectives(
            recent_points, self._grid, engine=config.engine,
            target_points=[tuple(float(v) for v in outlier)])
        ranked = rank_sparse_subspaces(
            objectives,
            top_k=subspaces_per_outlier,
            population_size=max(10, config.moga_population // 2),
            generations=max(5, config.moga_generations // 3),
            mutation_rate=config.moga_mutation_rate,
            crossover_rate=config.moga_crossover_rate,
            max_dimension=config.moga_max_dimension,
            seed=config.random_seed + 5000 + self._searches,
        )
        self._last_memory = dict(objectives.memory_footprint())
        added = 0
        for subspace, score in ranked:
            if sst.add_outlier_driven_subspace(subspace, score):
                added += 1
        return added
