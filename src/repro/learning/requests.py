"""The learn-request / publication protocol of off-hot-path learning.

The online adaptation mechanisms (per-outlier OS growth, periodic CS
self-evolution, periodic CS relearning) all follow the same shape: at a
deterministic stream position a *trigger* fires, an expensive MOGA search
runs over a snapshot of the recent-points reservoir, and the resulting
subspaces are folded into the SST.  This module splits that shape into three
explicit, serialisable phases so the search can leave the detection path:

1. **Request** — everything the search needs, captured at the trigger
   position: the reservoir snapshot (with its version), the search seed or
   the pre-drawn GA candidates, and the search budget.  Requests are pure
   data (JSON round-trippable), so in-flight requests survive detector
   checkpoints.
2. **Evaluation** — :func:`evaluate_learn_request` is a pure function of
   (request, grid): it touches no detector state, so it can run inline (the
   synchronous path), on a thread pool, or in another process, and always
   produces the same publication.  All randomness is consumed either at
   request time (self-evolution's offspring draw) or via an explicit seed
   carried by the request (OS growth, relearn), which is what makes the
   asynchronous mode decision-identical to the synchronous baseline.
3. **Publication** — the ranked subspaces the search found, applied to the
   SST at the request's apply point (immediately after the trigger position,
   before the next point of that stream is processed).

The ``LearningCoordinator`` (:mod:`repro.service.learning`) batches requests
that share a reservoir snapshot through one
:class:`~repro.moga.batch_objectives.SharedBatchContext` per snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..core.exceptions import ConfigurationError, SerializationError
from ..core.grid import Grid
from ..core.sst import RankedSubspace
from ..core.subspace import Subspace
from ..moga import make_sparsity_objectives, rank_sparse_subspaces

#: Request kinds, in the order the detector emits them at one position.
GROWTH_KIND = "os_growth"
EVOLUTION_KIND = "self_evolution"
RELEARN_KIND = "relearn"


@dataclass(frozen=True)
class ReservoirSnapshot:
    """An immutable copy of the recent-points reservoir at a trigger position.

    ``version`` is the reservoir's monotonic add-counter — requests captured
    at the same stream position share it, which is what the coordinator keys
    its shared objective contexts (and the objective memo) on.
    """

    version: int
    points: Tuple[Tuple[float, ...], ...]

    def __len__(self) -> int:
        return len(self.points)

    def to_dict(self) -> dict:
        return {"version": self.version,
                "points": [list(point) for point in self.points]}

    @classmethod
    def from_dict(cls, payload: dict) -> "ReservoirSnapshot":
        return cls(version=int(payload["version"]),
                   points=tuple(tuple(float(v) for v in point)
                                for point in payload["points"]))


@dataclass(frozen=True)
class GrowthRequest:
    """Per-outlier OS-growth search: MOGA targeted at one detected outlier."""

    request_id: str
    position: int
    outlier: Tuple[float, ...]
    seed: int
    top_k: int
    population_size: int
    generations: int
    mutation_rate: float
    crossover_rate: float
    max_dimension: int
    engine: str
    snapshot: ReservoirSnapshot

    kind = GROWTH_KIND

    @property
    def target_points(self) -> Optional[Tuple[Tuple[float, ...], ...]]:
        """The optimisation targets (the outlier itself)."""
        return (self.outlier,)

    @property
    def target_key(self) -> object:
        """Objective-memo key: growth vectors are target-specific."""
        return self.outlier

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "request_id": self.request_id,
            "position": self.position,
            "outlier": list(self.outlier),
            "seed": self.seed,
            "top_k": self.top_k,
            "population_size": self.population_size,
            "generations": self.generations,
            "mutation_rate": self.mutation_rate,
            "crossover_rate": self.crossover_rate,
            "max_dimension": self.max_dimension,
            "engine": self.engine,
            "snapshot": self.snapshot.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GrowthRequest":
        return cls(
            request_id=str(payload["request_id"]),
            position=int(payload["position"]),
            outlier=tuple(float(v) for v in payload["outlier"]),
            seed=int(payload["seed"]),
            top_k=int(payload["top_k"]),
            population_size=int(payload["population_size"]),
            generations=int(payload["generations"]),
            mutation_rate=float(payload["mutation_rate"]),
            crossover_rate=float(payload["crossover_rate"]),
            max_dimension=int(payload["max_dimension"]),
            engine=str(payload["engine"]),
            snapshot=ReservoirSnapshot.from_dict(payload["snapshot"]),
        )


@dataclass(frozen=True)
class EvolutionRequest:
    """CS self-evolution: re-rank incumbents + pre-drawn GA offspring.

    The offspring are drawn from the component's Mersenne state *at request
    time* (the same state the synchronous path would consume at the same
    position), so the evaluation itself is deterministic data-in/data-out.
    """

    request_id: str
    position: int
    incumbents: Tuple[Subspace, ...]
    candidates: Tuple[Subspace, ...]
    capacity: int
    engine: str
    snapshot: ReservoirSnapshot

    kind = EVOLUTION_KIND

    @property
    def target_points(self) -> Optional[Tuple[Tuple[float, ...], ...]]:
        """Self-evolution scores the whole snapshot (no explicit targets)."""
        return None

    @property
    def target_key(self) -> object:
        return None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "request_id": self.request_id,
            "position": self.position,
            "incumbents": [list(s.dimensions) for s in self.incumbents],
            "candidates": [list(s.dimensions) for s in self.candidates],
            "capacity": self.capacity,
            "engine": self.engine,
            "snapshot": self.snapshot.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "EvolutionRequest":
        return cls(
            request_id=str(payload["request_id"]),
            position=int(payload["position"]),
            incumbents=tuple(Subspace(dims)
                             for dims in payload["incumbents"]),
            candidates=tuple(Subspace(dims)
                             for dims in payload["candidates"]),
            capacity=int(payload["capacity"]),
            engine=str(payload["engine"]),
            snapshot=ReservoirSnapshot.from_dict(payload["snapshot"]),
        )


@dataclass(frozen=True)
class RelearnRequest:
    """Periodic CS relearn: a fresh MOGA over the reservoir, seeded by CS."""

    request_id: str
    position: int
    incumbents: Tuple[Subspace, ...]
    seed: int
    capacity: int
    population_size: int
    generations: int
    mutation_rate: float
    crossover_rate: float
    max_dimension: int
    engine: str
    snapshot: ReservoirSnapshot

    kind = RELEARN_KIND

    @property
    def target_points(self) -> Optional[Tuple[Tuple[float, ...], ...]]:
        """Relearning scores the whole snapshot (no explicit targets)."""
        return None

    @property
    def target_key(self) -> object:
        return None

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "request_id": self.request_id,
            "position": self.position,
            "incumbents": [list(s.dimensions) for s in self.incumbents],
            "seed": self.seed,
            "capacity": self.capacity,
            "population_size": self.population_size,
            "generations": self.generations,
            "mutation_rate": self.mutation_rate,
            "crossover_rate": self.crossover_rate,
            "max_dimension": self.max_dimension,
            "engine": self.engine,
            "snapshot": self.snapshot.to_dict(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RelearnRequest":
        return cls(
            request_id=str(payload["request_id"]),
            position=int(payload["position"]),
            incumbents=tuple(Subspace(dims)
                             for dims in payload["incumbents"]),
            seed=int(payload["seed"]),
            capacity=int(payload["capacity"]),
            population_size=int(payload["population_size"]),
            generations=int(payload["generations"]),
            mutation_rate=float(payload["mutation_rate"]),
            crossover_rate=float(payload["crossover_rate"]),
            max_dimension=int(payload["max_dimension"]),
            engine=str(payload["engine"]),
            snapshot=ReservoirSnapshot.from_dict(payload["snapshot"]),
        )


@dataclass(frozen=True)
class LearnPublication:
    """The outcome of one evaluated learn request, ready to apply to an SST."""

    request_id: str
    kind: str
    ranked: Tuple[Tuple[Subspace, float], ...]
    memory: Dict[str, int]

    def to_dict(self) -> dict:
        return {
            "request_id": self.request_id,
            "kind": self.kind,
            "ranked": [{"dims": list(s.dimensions), "score": score}
                       for s, score in self.ranked],
            "memory": dict(self.memory),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "LearnPublication":
        return cls(
            request_id=str(payload["request_id"]),
            kind=str(payload["kind"]),
            ranked=tuple((Subspace(entry["dims"]), float(entry["score"]))
                         for entry in payload["ranked"]),
            memory={str(k): int(v)
                    for k, v in (payload.get("memory") or {}).items()},
        )


def request_from_dict(payload: dict):
    """Rebuild a learn request of any kind from its ``to_dict`` payload."""
    kinds = {GROWTH_KIND: GrowthRequest, EVOLUTION_KIND: EvolutionRequest,
             RELEARN_KIND: RelearnRequest}
    kind = payload.get("kind")
    if kind not in kinds:
        raise SerializationError(f"unknown learn-request kind {kind!r}")
    return kinds[kind].from_dict(payload)


# --------------------------------------------------------------------- #
# Pure evaluation
# --------------------------------------------------------------------- #
def evaluate_learn_request(request, grid: Grid, *,
                           objectives=None) -> LearnPublication:
    """Run one learn request's search; pure in (request, grid).

    ``objectives`` optionally injects a pre-built sparsity-objectives
    instance (the synchronous path passes its memo-bound one, the
    coordinator passes one derived from the snapshot's shared context); when
    omitted the evaluator builds a fresh instance from the snapshot.  Either
    way the published floats are identical — objectives only memoise.
    """
    if objectives is None:
        objectives = make_sparsity_objectives(
            request.snapshot.points, grid, engine=request.engine,
            target_points=request.target_points)
    if request.kind == GROWTH_KIND:
        ranked = rank_sparse_subspaces(
            objectives,
            top_k=request.top_k,
            population_size=request.population_size,
            generations=request.generations,
            mutation_rate=request.mutation_rate,
            crossover_rate=request.crossover_rate,
            max_dimension=request.max_dimension,
            seed=request.seed,
        )
    elif request.kind == EVOLUTION_KIND:
        ranked = _rescore_evolution(request, objectives)
    elif request.kind == RELEARN_KIND:
        ranked = rank_sparse_subspaces(
            objectives,
            top_k=request.capacity,
            population_size=request.population_size,
            generations=request.generations,
            mutation_rate=request.mutation_rate,
            crossover_rate=request.crossover_rate,
            max_dimension=request.max_dimension,
            seed=request.seed,
            seeds=list(request.incumbents),
        )
    else:
        raise ConfigurationError(f"unknown learn-request kind {request.kind!r}")
    return LearnPublication(
        request_id=request.request_id,
        kind=request.kind,
        ranked=tuple((subspace, float(score)) for subspace, score in ranked),
        memory={k: int(v) for k, v in objectives.memory_footprint().items()},
    )


def _rescore_evolution(request: EvolutionRequest, objectives
                       ) -> Tuple[Tuple[Subspace, float], ...]:
    """Re-rank incumbents + candidates against the snapshot, keep the best.

    Replays the pre-request ``SelfEvolution.evolve`` arithmetic exactly:
    one population-sized evaluation pass primes the memo, incumbents are
    rescored in order, candidates are deduplicated against incumbents (and
    themselves) in order, and the stable sort keeps ties in that order.
    """
    incumbents = list(request.incumbents)
    seen = set(incumbents)
    # Prime the memo cache with one population-sized evaluation pass — on
    # the vectorized engine the whole incumbent + candidate pool is scored
    # in a few fused array sweeps instead of one dict walk each.
    pool = list(incumbents)
    pool.extend(c for c in request.candidates if c not in seen)
    objectives.evaluate_population(pool)
    rescored = [
        RankedSubspace(subspace=subspace,
                       score=objectives.sparsity_score(subspace))
        for subspace in incumbents
    ]
    new_members = []
    for candidate in request.candidates:
        if candidate in seen:
            continue
        seen.add(candidate)
        new_members.append(
            RankedSubspace(subspace=candidate,
                           score=objectives.sparsity_score(candidate))
        )
    combined = sorted(rescored + new_members, key=lambda item: item.score)
    kept = combined[: request.capacity]
    return tuple((item.subspace, item.score) for item in kept)
