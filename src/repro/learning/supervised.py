"""Supervised learning stage: building the OS component of the SST.

The supervised process incorporates whatever prior domain knowledge exists:

* **labelled outlier examples** — MOGA is applied with each example as the
  optimisation target; the union of the per-example top sparse subspaces
  becomes the Outlier-driven SST Subspaces (OS), enabling example-based
  detection of future outliers that resemble the known ones;
* **attribute relevance** — when the expert can name the attributes relevant
  to the detection task, the search is confined to those attributes, which
  both speeds learning up and keeps OS interpretable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.config import SPOTConfig
from ..core.exceptions import ConfigurationError
from ..core.grid import DomainBounds, Grid
from ..core.subspace import Subspace
from ..moga import (
    combine_footprints,
    make_sparsity_objectives,
    rank_sparse_subspaces,
)


@dataclass(frozen=True)
class SupervisedLearningResult:
    """Outcome of the supervised learning process.

    Attributes
    ----------
    outlier_driven_subspaces:
        The OS members: (subspace, sparsity score) pairs, sparsest first,
        expressed in the *original* attribute indices even when attribute
        filtering was used.
    per_example_subspaces:
        For each outlier example, its own top sparse subspaces (useful for
        explaining why an example is anomalous).
    relevant_attributes:
        The attribute filter that was applied, if any.
    """

    outlier_driven_subspaces: Tuple[Tuple[Subspace, float], ...]
    per_example_subspaces: Tuple[Tuple[Tuple[Subspace, float], ...], ...]
    relevant_attributes: Optional[Tuple[int, ...]] = None


class SupervisedLearner:
    """Implements the supervised learning process of SPOT's learning stage.

    Like the unsupervised learner, the per-example MOGA searches run on the
    objective implementation ``config.engine`` selects — reference loops or
    the population-vectorized batch kernels — with identical results.
    """

    def __init__(self, config: SPOTConfig, grid: Grid) -> None:
        self._config = config
        self._grid = grid
        self._last_memory: Dict[str, int] = {}

    @property
    def last_memory_footprint(self) -> Dict[str, int]:
        """Objective memo / training-batch memory of the most recent run."""
        return dict(self._last_memory)

    def learn(self,
              training_data: Sequence[Sequence[float]],
              outlier_examples: Sequence[Sequence[float]],
              *,
              relevant_attributes: Optional[Sequence[int]] = None,
              subspaces_per_example: int = 3
              ) -> SupervisedLearningResult:
        """Search the sparse subspaces of each expert-provided outlier example.

        Parameters
        ----------
        training_data:
            The reference batch the examples' sparsity is measured against.
        outlier_examples:
            Labelled projected outliers supplied by domain experts.
        relevant_attributes:
            Optional attribute filter; the search only proposes subspaces of
            these attributes.
        subspaces_per_example:
            How many top subspaces of each example are merged into OS.
        """
        if not training_data:
            raise ConfigurationError("training_data must not be empty")
        if not outlier_examples:
            raise ConfigurationError("outlier_examples must not be empty")
        if subspaces_per_example < 1:
            raise ConfigurationError("subspaces_per_example must be at least 1")

        config = self._config
        phi = self._grid.phi
        attribute_filter = self._validated_filter(relevant_attributes, phi)

        if attribute_filter is None:
            data = [tuple(float(v) for v in p) for p in training_data]
            examples = [tuple(float(v) for v in p) for p in outlier_examples]
            grid = self._grid
            remap = None
        else:
            data = [self._project(p, attribute_filter) for p in training_data]
            examples = [self._project(p, attribute_filter) for p in outlier_examples]
            grid = self._reduced_grid(attribute_filter)
            remap = attribute_filter

        per_example: List[Tuple[Tuple[Subspace, float], ...]] = []
        merged: List[Tuple[Subspace, float]] = []
        seen = set()
        self._last_memory = {}
        for i, example in enumerate(examples):
            objectives = make_sparsity_objectives(
                data, grid, engine=config.engine, target_points=[example])
            ranked = rank_sparse_subspaces(
                objectives,
                top_k=subspaces_per_example,
                population_size=config.moga_population,
                generations=config.moga_generations,
                mutation_rate=config.moga_mutation_rate,
                crossover_rate=config.moga_crossover_rate,
                max_dimension=config.moga_max_dimension,
                seed=config.random_seed + 100 + i,
            )
            self._last_memory = combine_footprints(
                self._last_memory, objectives.memory_footprint())
            restored = [(self._restore(subspace, remap), score)
                        for subspace, score in ranked]
            per_example.append(tuple(restored))
            for subspace, score in restored:
                if subspace in seen:
                    continue
                seen.add(subspace)
                merged.append((subspace, score))

        merged.sort(key=lambda item: item[1])
        merged = merged[:config.os_size]
        return SupervisedLearningResult(
            outlier_driven_subspaces=tuple(merged),
            per_example_subspaces=tuple(per_example),
            relevant_attributes=attribute_filter,
        )

    # ------------------------------------------------------------------ #
    @staticmethod
    def _validated_filter(relevant_attributes: Optional[Sequence[int]],
                          phi: int) -> Optional[Tuple[int, ...]]:
        if relevant_attributes is None:
            return None
        attrs = tuple(sorted(set(int(a) for a in relevant_attributes)))
        if not attrs:
            raise ConfigurationError("relevant_attributes must not be empty")
        if attrs[0] < 0 or attrs[-1] >= phi:
            raise ConfigurationError(
                f"relevant_attributes must lie in [0, {phi}), got {attrs}"
            )
        return attrs

    @staticmethod
    def _project(point: Sequence[float],
                 attributes: Tuple[int, ...]) -> Tuple[float, ...]:
        return tuple(float(point[a]) for a in attributes)

    def _reduced_grid(self, attributes: Tuple[int, ...]) -> Grid:
        bounds = self._grid.bounds
        reduced_bounds = DomainBounds(
            lows=tuple(bounds.lows[a] for a in attributes),
            highs=tuple(bounds.highs[a] for a in attributes),
        )
        return Grid(bounds=reduced_bounds,
                    cells_per_dimension=self._grid.cells_per_dimension)

    @staticmethod
    def _restore(subspace: Subspace,
                 remap: Optional[Tuple[int, ...]]) -> Subspace:
        if remap is None:
            return subspace
        return Subspace(remap[d] for d in subspace)
