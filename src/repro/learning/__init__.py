"""Learning processes building and adapting the Sparse Subspace Template."""

from .online import OutlierDrivenGrowth, RecentPointsBuffer, SelfEvolution
from .supervised import SupervisedLearner, SupervisedLearningResult
from .unsupervised import UnsupervisedLearner, UnsupervisedLearningResult

__all__ = [
    "OutlierDrivenGrowth",
    "RecentPointsBuffer",
    "SelfEvolution",
    "SupervisedLearner",
    "SupervisedLearningResult",
    "UnsupervisedLearner",
    "UnsupervisedLearningResult",
]
