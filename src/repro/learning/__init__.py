"""Learning processes building and adapting the Sparse Subspace Template."""

from .online import (
    OutlierDrivenGrowth,
    PeriodicRelearn,
    RecentPointsBuffer,
    SelfEvolution,
)
from .requests import (
    EvolutionRequest,
    GrowthRequest,
    LearnPublication,
    RelearnRequest,
    ReservoirSnapshot,
    evaluate_learn_request,
    request_from_dict,
)
from .supervised import SupervisedLearner, SupervisedLearningResult
from .unsupervised import UnsupervisedLearner, UnsupervisedLearningResult

__all__ = [
    "EvolutionRequest",
    "GrowthRequest",
    "LearnPublication",
    "OutlierDrivenGrowth",
    "PeriodicRelearn",
    "RecentPointsBuffer",
    "RelearnRequest",
    "ReservoirSnapshot",
    "SelfEvolution",
    "SupervisedLearner",
    "SupervisedLearningResult",
    "UnsupervisedLearner",
    "UnsupervisedLearningResult",
    "evaluate_learn_request",
    "request_from_dict",
]
