"""Unsupervised learning stage: building the CS component of the SST.

Follows the three steps the paper spells out:

1. run MOGA on the *whole* training batch to find its top sparse subspaces
   (these capture globally sparse regions and are kept as CS candidates);
2. cluster the training data with the lead clustering method under several
   data orders and compute each point's overall outlying degree;
3. run MOGA again with the *top outlying points* as the optimisation targets —
   their top sparse subspaces become the Clustering-based SST Subspaces (CS).

The learner is a pure function of (training batch, grid, config, seed): it
does not touch the online synapse store, so it can be unit-tested and reused
by the self-evolution machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..clustering import compute_outlying_degrees
from ..core.config import SPOTConfig
from ..core.exceptions import ConfigurationError
from ..core.grid import Grid
from ..core.subspace import Subspace
from ..moga import (
    combine_footprints,
    make_sparsity_objectives,
    rank_sparse_subspaces,
)


@dataclass(frozen=True)
class UnsupervisedLearningResult:
    """Everything the unsupervised stage produced.

    Attributes
    ----------
    clustering_subspaces:
        The CS candidates: (subspace, sparsity score) pairs, sparsest first.
    outlying_degrees:
        The OD value of every training point (aligned with the batch).
    top_outlying_indices:
        Indices of the training points whose sparse subspaces were searched.
    global_subspaces:
        The whole-batch sparse subspaces found in step 1 (kept for
        diagnostics and for the ablation benchmarks).
    """

    clustering_subspaces: Tuple[Tuple[Subspace, float], ...]
    outlying_degrees: Tuple[float, ...]
    top_outlying_indices: Tuple[int, ...]
    global_subspaces: Tuple[Tuple[Subspace, float], ...]


class UnsupervisedLearner:
    """Implements the unsupervised learning process of SPOT's learning stage.

    The MOGA objective implementation follows ``config.engine``: the
    ``"vectorized"`` detector scores candidate populations with
    :class:`~repro.moga.batch_objectives.BatchSparsityObjectives` (fused
    NumPy passes) while ``"python"`` keeps the reference loops; both yield
    the same CS subspaces given the same seed.
    """

    def __init__(self, config: SPOTConfig, grid: Grid) -> None:
        self._config = config
        self._grid = grid
        self._last_memory: Dict[str, int] = {}

    @property
    def last_memory_footprint(self) -> Dict[str, int]:
        """Objective memo / training-batch memory of the most recent run."""
        return dict(self._last_memory)

    def learn(self, training_data: Sequence[Sequence[float]]
              ) -> UnsupervisedLearningResult:
        """Run the full unsupervised pipeline on an in-memory training batch."""
        if not training_data:
            raise ConfigurationError("training_data must not be empty")
        config = self._config
        moga_params = dict(
            top_k=config.cs_size,
            population_size=config.moga_population,
            generations=config.moga_generations,
            mutation_rate=config.moga_mutation_rate,
            crossover_rate=config.moga_crossover_rate,
            max_dimension=config.moga_max_dimension,
        )

        # Step 1 — whole-batch MOGA: globally sparse subspaces.
        global_objectives = make_sparsity_objectives(
            training_data, self._grid, engine=config.engine)
        global_subspaces = rank_sparse_subspaces(
            global_objectives, seed=config.random_seed, **moga_params)

        # Step 2 — outlying degree of every training point by lead clustering
        # under several data orders.
        od_result = compute_outlying_degrees(
            training_data,
            n_runs=config.clustering_runs,
            distance_fraction=config.clustering_distance_fraction,
            seed=config.random_seed,
        )
        top_indices = od_result.top_fraction_indices(config.top_outlying_fraction)
        top_points = [training_data[i] for i in top_indices]

        # Step 3 — MOGA targeted at the most outlying points; seeded with the
        # globally sparse subspaces so the two searches supplement each other.
        targeted_objectives = make_sparsity_objectives(
            training_data, self._grid, engine=config.engine,
            target_points=top_points)
        targeted_subspaces = rank_sparse_subspaces(
            targeted_objectives, seed=config.random_seed + 1,
            seeds=[subspace for subspace, _ in global_subspaces],
            **moga_params)

        self._last_memory = combine_footprints(
            global_objectives.memory_footprint(),
            targeted_objectives.memory_footprint())

        clustering_subspaces = _merge_ranked(
            targeted_subspaces, global_subspaces, capacity=config.cs_size
        )

        return UnsupervisedLearningResult(
            clustering_subspaces=tuple(clustering_subspaces),
            outlying_degrees=od_result.degrees,
            top_outlying_indices=tuple(top_indices),
            global_subspaces=tuple(global_subspaces),
        )


def _merge_ranked(primary: Sequence[Tuple[Subspace, float]],
                  secondary: Sequence[Tuple[Subspace, float]],
                  *, capacity: int) -> List[Tuple[Subspace, float]]:
    """Merge two ranked subspace lists, primary first, deduplicated, capped."""
    merged: List[Tuple[Subspace, float]] = []
    seen = set()
    for ranked in (primary, secondary):
        for subspace, score in ranked:
            if subspace in seen:
                continue
            seen.add(subspace)
            merged.append((subspace, score))
    merged.sort(key=lambda item: item[1])
    return merged[:capacity]
