"""repro — a reproduction of SPOT (Zhang, Gao & Wang, ICDE 2008).

SPOT (Stream Projected Outlier deTector) detects *projected outliers* — points
that are anomalous only within a low-dimensional subspace — from
high-dimensional data streams, using decayed cell summaries (BCS/PCS), a
Sparse Subspace Template (SST) learned by clustering and a multi-objective
genetic algorithm, and online self-evolution of the template.

Quickstart
----------
>>> from repro import SPOT, SPOTConfig
>>> from repro.streams import GaussianStreamGenerator, values_of
>>> stream = GaussianStreamGenerator(dimensions=12, n_points=1500, seed=1)
>>> training, live = stream.split(700, 800)
>>> detector = SPOT(SPOTConfig(max_dimension=2, omega=400))
>>> detector.learn(values_of(training))
>>> outliers = detector.detect_outliers(live)
"""

from .core import (
    SPOT,
    DetectionResult,
    DomainBounds,
    Grid,
    SparseSubspaceTemplate,
    SPOTConfig,
    SPOTError,
    StreamSummary,
    Subspace,
    SubspaceEvidence,
    SynapseStore,
    TimeModel,
)

__version__ = "1.0.0"

__all__ = [
    "SPOT",
    "SPOTConfig",
    "SPOTError",
    "DetectionResult",
    "DomainBounds",
    "Grid",
    "SparseSubspaceTemplate",
    "StreamSummary",
    "Subspace",
    "SubspaceEvidence",
    "SynapseStore",
    "TimeModel",
    "__version__",
]
