"""Population-vectorized sparsity objectives for the learning stack.

:class:`BatchSparsityObjectives` is the NumPy twin of
:class:`~repro.moga.objectives.SparsityObjectives`, built on the same
engine-agnostic kernels (:mod:`repro.core.kernels`) that power the vectorized
detection store.  Instead of re-quantising the training batch and walking a
Python dict of accumulators for every candidate subspace, it

* quantises the training batch (and the target points) **once** at
  construction into an ``(n, phi)`` integer index matrix,
* scores an **entire MOGA population** of same-width subspaces in one fused
  pass: every subspace's cell keys are mixed-radix packed into a disjoint
  ``int64`` range (:func:`~repro.core.kernels.pack_with_offsets`), a single
  ``np.unique`` groups the cells of all of them, and 2k+1 ``np.bincount``
  scatter-adds produce every cell's (count, linear-sum, squared-sum) moments,
* derives the per-target RD / IRSD vectors and the dimension penalty from
  those moments with the shared :func:`~repro.core.kernels.batch_irsd` kernel,
* memoises the objective vector per subspace, exactly like the reference.

**Exact decision parity** is the contract, not a best-effort goal: given the
same training batch, targets and grid, ``evaluate`` returns bit-identical
objective tuples to the reference oracle, so a seeded MOGA run produces the
identical Pareto front, archive order and sparsity scores on either engine.
That holds because every float reduction here replays the reference's
accumulation order — ``np.bincount`` folds weights in input (stream) order,
``np.cumsum`` sums targets left to right, and the per-dimension expectation
product multiplies in subspace-dimension order.  ``tests/test_moga_parity.py``
enforces the contract on randomized instances.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.exceptions import ConfigurationError
from ..core.grid import Grid
from ..core.kernels import (
    batch_irsd,
    group_moments,
    marginal_histograms,
    pack_with_offsets,
    quantize_batch,
    sequential_row_sums,
)
from ..core.subspace import Subspace
from .objectives import (
    ObjectiveMemo,
    ObjectiveMemoView,
    SparsityObjectives,
    memo_cache_bytes,
    score_objective_vector,
)

_INT64_MAX = np.iinfo(np.int64).max


class SharedBatchContext:
    """The heavy, target-independent half of batch objectives, built once.

    Every search over the same training snapshot (e.g. all the outliers and
    the self-evolution round of one reservoir version) needs exactly the same
    quantised index matrix, per-dimension marginals and uniform-std vector.
    A context captures those arrays once so
    :meth:`BatchSparsityObjectives.from_context` can stamp out per-target
    objective instances without re-quantising the batch per search — the
    learning coordinator keys contexts by (shard, reservoir version).

    The bundled :class:`ObjectiveMemo` travels with the context so searches
    sharing a snapshot also share memoised objective vectors.
    """

    def __init__(self, training_data: Sequence[Sequence[float]], grid: Grid,
                 *, version: Optional[int] = None) -> None:
        self.grid = grid
        self.version = version
        phi = grid.phi
        self.X = BatchSparsityObjectives._as_matrix(training_data, phi,
                                                    "training")
        if self.X.shape[0] == 0:
            raise ConfigurationError("training_data must not be empty")
        m = grid.cells_per_dimension
        self.lows = np.asarray(grid.bounds.lows, dtype=np.float64)
        self.widths = np.asarray(grid.cell_widths, dtype=np.float64)
        self.idx = quantize_batch(self.X, self.lows, self.widths, m)
        self.marginals = marginal_histograms(self.idx, m)
        self.ustd = np.array([grid.uniform_cell_std(d) for d in range(phi)],
                             dtype=np.float64)
        self.memo = ObjectiveMemo()

    def memo_view(self, target_key: object = None) -> ObjectiveMemoView:
        """A memo view bound to this context's snapshot version."""
        return self.memo.view(self.version, target_key)


class BatchSparsityObjectives:
    """Multi-objective sparsity evaluation, vectorized over whole populations.

    Drop-in replacement for :class:`SparsityObjectives` (same constructor
    contract, same ``evaluate`` / ``sparsity_score`` / ``evaluated_subspaces``
    surface, bit-identical objective vectors) plus
    :meth:`evaluate_population`, which the MOGA engine feeds whole
    generations to.  Selected via ``SPOTConfig.engine == "vectorized"``.
    """

    #: Number of objective components returned by :meth:`evaluate`.
    N_OBJECTIVES = 3

    def __init__(self,
                 training_data: Sequence[Sequence[float]],
                 grid: Grid,
                 *,
                 target_points: Optional[Sequence[Sequence[float]]] = None,
                 irsd_cap: float = 100.0,
                 density_reference: str = "hybrid",
                 memo: Optional[ObjectiveMemoView] = None) -> None:
        context = SharedBatchContext(training_data, grid)
        self._init_from_context(context, target_points=target_points,
                                irsd_cap=irsd_cap,
                                density_reference=density_reference,
                                memo=memo)

    @classmethod
    def from_context(cls, context: SharedBatchContext, *,
                     target_points: Optional[Sequence[Sequence[float]]] = None,
                     irsd_cap: float = 100.0,
                     density_reference: str = "hybrid",
                     memo: Optional[ObjectiveMemoView] = None
                     ) -> "BatchSparsityObjectives":
        """Objectives over a pre-quantised snapshot (see SharedBatchContext).

        Produces bit-identical vectors to a fresh construction over the same
        batch — the context only amortises the target-independent arrays.
        """
        self = cls.__new__(cls)
        self._init_from_context(context, target_points=target_points,
                                irsd_cap=irsd_cap,
                                density_reference=density_reference,
                                memo=memo)
        return self

    def _init_from_context(self, context: SharedBatchContext, *,
                           target_points, irsd_cap: float,
                           density_reference: str,
                           memo: Optional[ObjectiveMemoView]) -> None:
        if density_reference not in ("hybrid", "marginal", "populated", "lattice"):
            raise ConfigurationError(
                "density_reference must be 'hybrid', 'marginal', 'populated' "
                f"or 'lattice', got {density_reference!r}"
            )
        grid = context.grid
        self._density_reference = density_reference
        self._grid = grid
        self._irsd_cap = irsd_cap
        self._memo = memo
        self._X = context.X
        m = grid.cells_per_dimension
        self._idx = context.idx
        # Per-dimension marginal histograms of the batch, used by the
        # independence expectation (hybrid / marginal references).
        self._marginals = context.marginals
        if target_points is None:
            self._tidx = self._idx
        else:
            T = self._as_matrix(target_points, grid.phi, "target")
            if T.shape[0] == 0:
                raise ConfigurationError("target_points must not be empty")
            self._tidx = quantize_batch(T, context.lows, context.widths, m)
        self._total = float(self._X.shape[0])
        self._ustd = context.ustd
        self._cache: Dict[Subspace, Tuple[float, ...]] = {}
        self._evaluations = 0

    @staticmethod
    def _as_matrix(points, phi: int, what: str) -> np.ndarray:
        if isinstance(points, np.ndarray):
            # Snapshot, never alias: the reference oracle copies the batch
            # into tuples at construction, so callers may reuse their buffer
            # without invalidating memoised objective vectors.
            X = np.array(points, dtype=np.float64)
            if X.ndim == 1:
                X = X.reshape(-1, phi) if X.size else X.reshape(0, phi)
        else:
            try:
                X = np.array([tuple(float(v) for v in point)
                              for point in points], dtype=np.float64)
            except ValueError as exc:  # ragged rows
                raise ConfigurationError(
                    f"{what} points disagree in dimensionality: {exc}"
                ) from None
            if X.ndim == 1:  # empty input collapses to 1-d
                X = X.reshape(0, phi)
        if X.shape[0] and X.shape[1] != phi:
            raise ConfigurationError(
                f"{what} point of length {X.shape[1]} does not match "
                f"the {phi}-dimensional grid"
            )
        return X

    # ------------------------------------------------------------------ #
    @property
    def phi(self) -> int:
        """Dimensionality of the data space."""
        return self._grid.phi

    @property
    def evaluations(self) -> int:
        """Number of distinct subspaces evaluated so far (cache misses)."""
        return self._evaluations

    @property
    def grid(self) -> Grid:
        """The grid geometry used for the sparsity computation."""
        return self._grid

    # ------------------------------------------------------------------ #
    def evaluate(self, subspace: Subspace) -> Tuple[float, ...]:
        """Objective vector (lower is sparser/better) of ``subspace``."""
        cached = self._cache.get(subspace)
        if cached is not None:
            return cached
        return self.evaluate_population([subspace])[0]

    def evaluate_population(self, subspaces: Sequence[Subspace]
                            ) -> List[Tuple[float, ...]]:
        """Objective vectors of a whole population, in a few fused passes.

        Uncached subspaces are grouped by width and each group is scored in
        one ``np.unique`` + ``np.bincount`` sweep over the training batch;
        results land in the memo cache in first-occurrence order — the same
        order a sequential ``evaluate`` loop would produce, so the archive
        (:meth:`evaluated_subspaces`) is identical across engines.
        """
        pending: List[Subspace] = []
        seen = set()
        for subspace in subspaces:
            if subspace not in self._cache and subspace not in seen:
                seen.add(subspace)
                pending.append(subspace)
        if pending:
            # Cross-search memo hits are collected into `results` (not the
            # local cache directly) so the archive below still fills in
            # first-occurrence order, identical to a sequential evaluate loop.
            results: Dict[Subspace, Tuple[float, ...]] = {}
            if self._memo is not None:
                for subspace in pending:
                    memoised = self._memo.lookup(subspace)
                    if memoised is not None:
                        results[subspace] = memoised
            by_width: Dict[int, List[Subspace]] = {}
            for subspace in pending:
                if subspace in results:
                    continue
                subspace.validate_against(self.phi)
                by_width.setdefault(len(subspace), []).append(subspace)
            for width, group in by_width.items():
                self._evaluate_width_group(width, group, results)
            for subspace in pending:
                self._cache[subspace] = results[subspace]
            for width_group in by_width.values():
                for subspace in width_group:
                    self._evaluations += 1
                    if self._memo is not None:
                        self._memo.store(subspace, results[subspace])
        return [self._cache[subspace] for subspace in subspaces]

    # ------------------------------------------------------------------ #
    def _evaluate_width_group(self, k: int, group: List[Subspace],
                              results: Dict[Subspace, Tuple[float, ...]]
                              ) -> None:
        m = self._grid.cells_per_dimension
        span = m ** k  # exact Python int — no overflow
        dims_mat = np.array([s.dimensions for s in group], dtype=np.int64)
        if span - 1 > _INT64_MAX:
            # Keys of even a single subspace overflow int64: group on raw
            # index rows instead of packed scalars, one subspace at a time.
            for i, subspace in enumerate(group):
                self._evaluate_rows(subspace, dims_mat[i:i + 1], k, results)
            return
        # One fused pass per chunk of subspaces whose offset key ranges all
        # fit in int64 side by side.
        max_s = max(1, _INT64_MAX // span)
        for start in range(0, len(group), max_s):
            chunk = group[start:start + max_s]
            self._evaluate_packed(chunk, dims_mat[start:start + len(chunk)],
                                  k, results)

    def _evaluate_packed(self, group: List[Subspace], dims_mat: np.ndarray,
                         k: int, results: Dict[Subspace, Tuple[float, ...]]
                         ) -> None:
        """Fused scoring of ``S`` same-width subspaces via offset-packed keys."""
        S = len(group)
        m = self._grid.cells_per_dimension
        span = m ** k
        n = self._idx.shape[0]
        t = self._tidx.shape[0]
        data_keys = pack_with_offsets(self._idx, dims_mat, m)
        assert data_keys is not None  # chunking above guarantees packability
        flat_data = data_keys.ravel(order="F")
        if self._tidx is self._idx:
            uniq, inv = np.unique(flat_data, return_inverse=True)
            inv = inv.reshape(-1)
            data_inv = inv
            target_inv = inv.reshape(S, t)
        else:
            flat_targets = pack_with_offsets(
                self._tidx, dims_mat, m).ravel(order="F")
            uniq, inv = np.unique(np.concatenate([flat_data, flat_targets]),
                                  return_inverse=True)
            inv = inv.reshape(-1)
            data_inv = inv[:S * n]
            target_inv = inv[S * n:].reshape(S, t)

        # Per-cell moments over the *data* rows only; column j of the value
        # matrix holds attribute dims_mat[s, j] of every point, per-subspace
        # blocks stacked in stream order (bincount therefore accumulates each
        # cell's sums in exactly the reference accumulator's order).
        values = np.empty((S * n, k), dtype=np.float64)
        for j in range(k):
            values[:, j] = self._X[:, dims_mat[:, j]].ravel(order="F")
        count, lin, sq = group_moments(data_inv, len(uniq), values)

        # Populated-cell count per subspace (target-only groups hold no mass).
        group_sub = uniq // span
        populated = np.bincount(group_sub[count > 0.0], minlength=S)
        self._finish(group, dims_mat, k, count, lin, sq, populated,
                     target_inv, results)

    def _evaluate_rows(self, subspace: Subspace, dims_mat: np.ndarray,
                       k: int, results: Dict[Subspace, Tuple[float, ...]]
                       ) -> None:
        """Fallback for subspaces whose packed key range overflows int64."""
        dims = dims_mat[0]
        n = self._idx.shape[0]
        rows = self._idx[:, dims]
        if self._tidx is self._idx:
            all_rows = rows
        else:
            all_rows = np.concatenate([rows, self._tidx[:, dims]], axis=0)
        uniq, inv = np.unique(all_rows, axis=0, return_inverse=True)
        inv = inv.reshape(-1)
        data_inv = inv[:n]
        target_inv = (data_inv if self._tidx is self._idx
                      else inv[n:]).reshape(1, -1)
        count, lin, sq = group_moments(data_inv, uniq.shape[0],
                                       self._X[:, dims])
        populated = np.array([int(np.count_nonzero(count > 0.0))])
        self._finish([subspace], dims_mat, k, count, lin, sq, populated,
                     target_inv, results)

    def _finish(self, group: List[Subspace], dims_mat: np.ndarray, k: int,
                count: np.ndarray, lin: np.ndarray, sq: np.ndarray,
                populated: np.ndarray, target_inv: np.ndarray,
                results: Dict[Subspace, Tuple[float, ...]]) -> None:
        """Per-target RD/IRSD vectors and objective means from cell moments."""
        S, t = target_inv.shape
        total = self._total
        tc = count[target_inv]          # (S, t) target-cell masses
        tlin = lin[target_inv]          # (S, t, k)
        tsq = sq[target_inv]
        # A target in a cell no training point populates is skipped by the
        # reference (no accumulator to score) — it contributes zero.
        exists = tc > 0.0

        reference = self._density_reference
        if reference == "lattice":
            expected = np.full((S, t), total / self._grid.cell_count(group[0]))
        elif reference == "populated" or (reference == "hybrid" and k == 1):
            per_sub = np.array([total / max(1, int(c)) for c in populated])
            expected = np.broadcast_to(per_sub[:, None], (S, t)).copy()
        else:  # marginal, or hybrid with k > 1: independence expectation
            expected = np.full((S, t), total)
            for j in range(k):
                d = dims_mat[:, j]                       # (S,)
                tcols = self._tidx[:, d].T               # (S, t)
                mvals = np.take_along_axis(self._marginals[d], tcols, axis=1)
                expected *= mvals / total
        supported = expected > 0.0
        live = exists & supported

        # Exclude the target's own unit contribution so a point does not mask
        # its own sparsity (the detection stage does the same).
        count_excl = np.maximum(0.0, tc - 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            rd = np.where(live, count_excl / expected, 0.0)
        ustd = self._ustd[dims_mat][:, None, :]          # (S, 1, k)
        irsd = np.where(live, batch_irsd(tc, tlin, tsq, ustd, self._irsd_cap),
                        0.0)

        rd_mean = sequential_row_sums(rd) / t
        irsd_mean = sequential_row_sums(irsd) / t
        phi = self.phi
        for i, subspace in enumerate(group):
            results[subspace] = (float(rd_mean[i]), float(irsd_mean[i]),
                                 len(subspace) / phi)

    # ------------------------------------------------------------------ #
    def evaluated_subspaces(self) -> List[Subspace]:
        """Every distinct subspace evaluated so far (the search's archive)."""
        return list(self._cache)

    def sparsity_score(self, subspace: Subspace) -> float:
        """Scalar summary used for ranking outside the GA (lower = sparser).

        The shared :func:`~repro.moga.objectives.score_objective_vector`
        formula over this engine's (bit-identical) objective vector.
        """
        return score_objective_vector(self.evaluate(subspace), self._irsd_cap)

    def memory_footprint(self) -> Dict[str, int]:
        """Learning-side memory: memo cache and resident training arrays."""
        memo_bytes = memo_cache_bytes(self._cache)
        batch_bytes = self._X.nbytes + self._idx.nbytes + self._marginals.nbytes
        if self._tidx is not self._idx:
            batch_bytes += self._tidx.nbytes
        return {
            "memo_entries": len(self._cache),
            "memo_bytes": memo_bytes,
            "training_batch_bytes": batch_bytes,
        }


def make_sparsity_objectives(training_data, grid, *,
                             engine: str = "python",
                             target_points=None,
                             irsd_cap: float = 100.0,
                             density_reference: str = "hybrid",
                             memo: Optional[ObjectiveMemoView] = None,
                             context: Optional[SharedBatchContext] = None):
    """Build the sparsity objectives matching a ``SPOTConfig.engine`` value.

    ``"python"`` returns the reference :class:`SparsityObjectives` (the parity
    oracle); ``"vectorized"`` returns :class:`BatchSparsityObjectives`.  Both
    produce bit-identical objective vectors — the switch only trades
    interpreter loops for fused array passes.  ``context`` (vectorized engine
    only) reuses a pre-quantised snapshot instead of ``training_data``;
    ``memo`` shares evaluations across searches on one reservoir version.
    """
    if engine not in ("python", "vectorized"):
        raise ConfigurationError(
            f"engine must be 'python' or 'vectorized', got {engine!r}"
        )
    if engine == "vectorized":
        if context is not None:
            return BatchSparsityObjectives.from_context(
                context, target_points=target_points, irsd_cap=irsd_cap,
                density_reference=density_reference, memo=memo)
        return BatchSparsityObjectives(
            training_data, grid, target_points=target_points,
            irsd_cap=irsd_cap, density_reference=density_reference, memo=memo)
    return SparsityObjectives(training_data, grid, target_points=target_points,
                              irsd_cap=irsd_cap,
                              density_reference=density_reference, memo=memo)
