"""Chromosome encoding of candidate subspaces for the genetic search.

A candidate subspace over a ``phi``-dimensional space is encoded as a
bit-string of length ``phi``: bit ``i`` is set when attribute ``i`` belongs to
the subspace.  The encoding must always describe a *valid* subspace — at least
one bit set and no more than ``max_dimension`` bits — so every operator routes
its output through :meth:`Chromosome.repaired`.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.subspace import Subspace


class Chromosome:
    """A fixed-length bit-string describing one candidate subspace."""

    __slots__ = ("genes",)

    def __init__(self, genes: Sequence[bool]) -> None:
        if not genes:
            raise ConfigurationError("a chromosome needs at least one gene")
        self.genes: Tuple[bool, ...] = tuple(bool(g) for g in genes)

    # ------------------------------------------------------------------ #
    @property
    def length(self) -> int:
        """Number of genes (the dimensionality ``phi`` of the data space)."""
        return len(self.genes)

    @property
    def cardinality(self) -> int:
        """Number of selected attributes."""
        return sum(self.genes)

    def is_valid(self, max_dimension: int) -> bool:
        """Whether the encoded subspace is non-empty and within the size cap."""
        card = self.cardinality
        return 1 <= card <= max_dimension

    def to_subspace(self) -> Subspace:
        """Decode into a :class:`Subspace`; requires at least one set bit."""
        return Subspace.from_mask(self.genes)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Chromosome):
            return self.genes == other.genes
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.genes)

    def __repr__(self) -> str:
        bits = "".join("1" if g else "0" for g in self.genes)
        return f"Chromosome({bits})"

    # ------------------------------------------------------------------ #
    # Construction / repair
    # ------------------------------------------------------------------ #
    @classmethod
    def from_subspace(cls, subspace: Subspace, phi: int) -> "Chromosome":
        """Encode an existing subspace over a ``phi``-dimensional space."""
        return cls(subspace.as_mask(phi))

    @classmethod
    def random(cls, phi: int, max_dimension: int,
               rng: random.Random) -> "Chromosome":
        """Draw a random valid chromosome with 1..max_dimension set bits."""
        if phi <= 0:
            raise ConfigurationError("phi must be positive")
        if max_dimension < 1:
            raise ConfigurationError("max_dimension must be at least 1")
        cardinality = rng.randint(1, min(max_dimension, phi))
        selected = rng.sample(range(phi), cardinality)
        genes = [False] * phi
        for index in selected:
            genes[index] = True
        return cls(genes)

    def repaired(self, max_dimension: int, rng: random.Random) -> "Chromosome":
        """Return a valid chromosome as close to this one as possible.

        * If no bit is set, one random bit is switched on.
        * If more than ``max_dimension`` bits are set, randomly chosen excess
          bits are switched off.
        """
        genes: List[bool] = list(self.genes)
        selected = [i for i, g in enumerate(genes) if g]
        if not selected:
            genes[rng.randrange(len(genes))] = True
            return Chromosome(genes)
        cap = min(max_dimension, len(genes))
        if len(selected) > cap:
            for index in rng.sample(selected, len(selected) - cap):
                genes[index] = False
        return Chromosome(genes)


def unique_chromosomes(chromosomes: Iterable[Chromosome]) -> List[Chromosome]:
    """Deduplicate a sequence of chromosomes while preserving order."""
    seen = set()
    unique: List[Chromosome] = []
    for chromosome in chromosomes:
        if chromosome.genes not in seen:
            seen.add(chromosome.genes)
            unique.append(chromosome)
    return unique
