"""Multi-Objective Genetic Algorithm for sparse-subspace search."""

from .chromosome import Chromosome, unique_chromosomes
from .engine import MOGAEngine, MOGAResult, find_sparse_subspaces
from .nsga2 import (
    crowded_comparison_rank,
    crowding_distance,
    fast_non_dominated_sort,
    select_survivors,
)
from .objectives import SparsityObjectives, dominates
from .operators import (
    binary_tournament,
    bit_flip_mutation,
    make_offspring,
    one_point_crossover,
    uniform_crossover,
)

__all__ = [
    "Chromosome",
    "unique_chromosomes",
    "MOGAEngine",
    "MOGAResult",
    "find_sparse_subspaces",
    "crowded_comparison_rank",
    "crowding_distance",
    "fast_non_dominated_sort",
    "select_survivors",
    "SparsityObjectives",
    "dominates",
    "binary_tournament",
    "bit_flip_mutation",
    "make_offspring",
    "one_point_crossover",
    "uniform_crossover",
]
