"""Multi-Objective Genetic Algorithm for sparse-subspace search."""

from .batch_objectives import (
    BatchSparsityObjectives,
    SharedBatchContext,
    make_sparsity_objectives,
)
from .chromosome import Chromosome, unique_chromosomes
from .engine import (
    MOGAEngine,
    MOGAResult,
    find_sparse_subspaces,
    rank_sparse_subspaces,
)
from .nsga2 import (
    crowded_comparison_rank,
    crowding_distance,
    fast_non_dominated_sort,
    select_survivors,
)
from .objectives import (
    ObjectiveMemo,
    ObjectiveMemoView,
    SparsityObjectives,
    combine_footprints,
    dominates,
    memo_cache_bytes,
    score_objective_vector,
)
from .operators import (
    binary_tournament,
    bit_flip_mutation,
    make_offspring,
    one_point_crossover,
    uniform_crossover,
)

__all__ = [
    "BatchSparsityObjectives",
    "ObjectiveMemo",
    "ObjectiveMemoView",
    "SharedBatchContext",
    "make_sparsity_objectives",
    "Chromosome",
    "unique_chromosomes",
    "MOGAEngine",
    "MOGAResult",
    "find_sparse_subspaces",
    "rank_sparse_subspaces",
    "crowded_comparison_rank",
    "crowding_distance",
    "fast_non_dominated_sort",
    "select_survivors",
    "SparsityObjectives",
    "combine_footprints",
    "dominates",
    "memo_cache_bytes",
    "score_objective_vector",
    "binary_tournament",
    "bit_flip_mutation",
    "make_offspring",
    "one_point_crossover",
    "uniform_crossover",
]
