"""NSGA-II machinery: fast non-dominated sorting and crowding distance.

The multi-objective GA in SPOT needs a way to rank a population against
several sparsity objectives at once.  This module implements the two ranking
primitives of Deb et al.'s NSGA-II, which the engine combines with the
operators from :mod:`repro.moga.operators`:

* :func:`fast_non_dominated_sort` partitions a population into Pareto fronts;
* :func:`crowding_distance` spreads selection pressure along each front so the
  search keeps a diverse set of trade-offs between density, deviation and
  subspace dimension.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from .objectives import dominates

ObjectiveVector = Tuple[float, ...]


def fast_non_dominated_sort(objectives: Sequence[ObjectiveVector]) -> List[List[int]]:
    """Partition indices 0..n-1 into Pareto fronts (best front first).

    Returns a list of fronts, each a list of indices into ``objectives``.
    Every index appears in exactly one front.
    """
    n = len(objectives)
    if n == 0:
        return []
    dominated_by: List[List[int]] = [[] for _ in range(n)]
    domination_count = [0] * n
    fronts: List[List[int]] = [[]]

    for i in range(n):
        for j in range(i + 1, n):
            if dominates(objectives[i], objectives[j]):
                dominated_by[i].append(j)
                domination_count[j] += 1
            elif dominates(objectives[j], objectives[i]):
                dominated_by[j].append(i)
                domination_count[i] += 1
        if domination_count[i] == 0:
            fronts[0].append(i)

    current = 0
    while fronts[current]:
        next_front: List[int] = []
        for i in fronts[current]:
            for j in dominated_by[i]:
                domination_count[j] -= 1
                if domination_count[j] == 0:
                    next_front.append(j)
        current += 1
        fronts.append(next_front)
    fronts.pop()  # the loop always appends one trailing empty front
    return fronts


def crowding_distance(objectives: Sequence[ObjectiveVector],
                      front: Sequence[int]) -> Dict[int, float]:
    """Crowding distance of every index in ``front``.

    Boundary solutions of each objective get infinite distance so they are
    always preferred, which preserves the extremes of the Pareto front.
    """
    if not front:
        return {}
    n_objectives = len(objectives[front[0]])
    distance: Dict[int, float] = {i: 0.0 for i in front}
    if len(front) <= 2:
        return {i: math.inf for i in front}

    for m in range(n_objectives):
        ordered = sorted(front, key=lambda i: objectives[i][m])
        lo = objectives[ordered[0]][m]
        hi = objectives[ordered[-1]][m]
        distance[ordered[0]] = math.inf
        distance[ordered[-1]] = math.inf
        span = hi - lo
        if span <= 0.0:
            continue
        for position in range(1, len(ordered) - 1):
            i = ordered[position]
            if math.isinf(distance[i]):
                continue
            gap = (objectives[ordered[position + 1]][m]
                   - objectives[ordered[position - 1]][m])
            distance[i] += gap / span
    return distance


def crowded_comparison_rank(objectives: Sequence[ObjectiveVector]
                            ) -> List[Tuple[int, float]]:
    """(front index, -crowding distance) key for every individual.

    Sorting individuals by this key ascending gives NSGA-II's crowded
    comparison order: lower front first, then larger crowding distance.
    """
    n = len(objectives)
    ranks: List[Tuple[int, float]] = [(0, 0.0)] * n
    fronts = fast_non_dominated_sort(objectives)
    for front_index, front in enumerate(fronts):
        distances = crowding_distance(objectives, front)
        for i in front:
            ranks[i] = (front_index, -distances[i])
    return ranks


def select_survivors(objectives: Sequence[ObjectiveVector],
                     capacity: int) -> List[int]:
    """Pick the ``capacity`` best individuals by crowded comparison.

    This is NSGA-II's environmental selection: whole fronts are admitted while
    they fit, and the last partially admitted front is truncated by crowding
    distance (most isolated solutions first).
    """
    if capacity < 0:
        raise ConfigurationError("capacity must be non-negative")
    survivors: List[int] = []
    for front in fast_non_dominated_sort(objectives):
        if len(survivors) + len(front) <= capacity:
            survivors.extend(front)
            continue
        remaining = capacity - len(survivors)
        if remaining <= 0:
            break
        distances = crowding_distance(objectives, front)
        ordered = sorted(front, key=lambda i: distances[i], reverse=True)
        survivors.extend(ordered[:remaining])
        break
    return survivors
