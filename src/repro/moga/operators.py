"""Genetic operators over subspace chromosomes.

Standard binary-GA operators — uniform and one-point crossover, bit-flip
mutation, binary tournament selection — specialised only in that every
offspring is repaired back into a valid subspace encoding (non-empty, at most
``max_dimension`` attributes).  The same crossover/mutation pair is reused by
the online self-evolution of the CS component.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from .chromosome import Chromosome


def one_point_crossover(parent_a: Chromosome, parent_b: Chromosome,
                        rng: random.Random) -> Tuple[Chromosome, Chromosome]:
    """Classic one-point crossover; parents must share a length."""
    if parent_a.length != parent_b.length:
        raise ConfigurationError("parents must have the same chromosome length")
    if parent_a.length < 2:
        return parent_a, parent_b
    cut = rng.randint(1, parent_a.length - 1)
    child_a = Chromosome(parent_a.genes[:cut] + parent_b.genes[cut:])
    child_b = Chromosome(parent_b.genes[:cut] + parent_a.genes[cut:])
    return child_a, child_b


def uniform_crossover(parent_a: Chromosome, parent_b: Chromosome,
                      rng: random.Random,
                      swap_probability: float = 0.5) -> Tuple[Chromosome, Chromosome]:
    """Uniform crossover: each gene is swapped independently."""
    if parent_a.length != parent_b.length:
        raise ConfigurationError("parents must have the same chromosome length")
    genes_a: List[bool] = []
    genes_b: List[bool] = []
    for a, b in zip(parent_a.genes, parent_b.genes):
        if rng.random() < swap_probability:
            genes_a.append(b)
            genes_b.append(a)
        else:
            genes_a.append(a)
            genes_b.append(b)
    return Chromosome(genes_a), Chromosome(genes_b)


def bit_flip_mutation(chromosome: Chromosome, rng: random.Random,
                      mutation_rate: float) -> Chromosome:
    """Flip each gene independently with probability ``mutation_rate``."""
    if not 0.0 <= mutation_rate <= 1.0:
        raise ConfigurationError("mutation_rate must lie in [0, 1]")
    genes = [
        (not gene) if rng.random() < mutation_rate else gene
        for gene in chromosome.genes
    ]
    return Chromosome(genes)


def binary_tournament(population: Sequence[Chromosome],
                      better: Callable[[Chromosome, Chromosome], Chromosome],
                      rng: random.Random) -> Chromosome:
    """Pick two random individuals and return the one ``better`` prefers."""
    if not population:
        raise ConfigurationError("cannot select from an empty population")
    a = population[rng.randrange(len(population))]
    b = population[rng.randrange(len(population))]
    return better(a, b)


def make_offspring(parent_a: Chromosome, parent_b: Chromosome,
                   rng: random.Random, *,
                   crossover_rate: float,
                   mutation_rate: float,
                   max_dimension: int) -> Tuple[Chromosome, Chromosome]:
    """Crossover (with probability ``crossover_rate``), mutate and repair."""
    if rng.random() < crossover_rate:
        child_a, child_b = uniform_crossover(parent_a, parent_b, rng)
    else:
        child_a, child_b = parent_a, parent_b
    child_a = bit_flip_mutation(child_a, rng, mutation_rate)
    child_b = bit_flip_mutation(child_b, rng, mutation_rate)
    return (child_a.repaired(max_dimension, rng),
            child_b.repaired(max_dimension, rng))
