"""Sparsity objectives optimised by the multi-objective genetic search.

The paper's point (Section III, third bullet) is that SPOT does *not* reduce
outlier-ness to a single criterion: MOGA searches for subspaces that optimise
several sparsity measurements simultaneously.  The objective vector used here,
all components to be minimised, is::

    ( mean RD of the target points' cells,
      mean IRSD of the target points' cells,
      |s| / phi )

* the first two come straight from the PCS definition — low Relative Density
  and low Inverse Relative Standard Deviation mean the target points sit in
  sparse, scattered cells of the candidate subspace;
* the third is the dimension penalty: among equally sparse subspaces the
  lower-dimensional one is preferred (that is where outlier-ness is
  interpretable and where the paper argues projected outliers live).

Objectives are evaluated against an in-memory training batch (the learning
stage is offline), using the same equi-width grid geometry as the online
synapse store so that what MOGA finds sparse is also what the detector will
measure as sparse.  Evaluations are memoised per subspace because the GA
population revisits the same subspaces many times.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple  # noqa: F401

from ..core.cell_summary import DecayedCellAccumulator, compute_pcs
from ..core.exceptions import ConfigurationError
from ..core.grid import Grid
from ..core.subspace import Subspace
from ..core.time_model import TimeModel


def score_objective_vector(vector: Sequence[float], irsd_cap: float) -> float:
    """Scalar ranking score of one objective vector (lower = sparser).

    A weighted sum of the objective vector: RD dominates, IRSD breaks ties,
    and the dimension penalty keeps the score from preferring needlessly wide
    subspaces.  Shared by the reference and the batch objectives so the two
    engines rank by the same floats by construction.
    """
    rd, irsd, dim_fraction = vector
    return rd + 0.1 * (irsd / irsd_cap) + 0.01 * dim_fraction


class ObjectiveMemo:
    """Cross-search objective cache keyed by (reservoir version, target, subspace).

    One MOGA search memoises evaluations *within* itself (the objectives'
    local cache); this memo carries them *across* searches for as long as the
    data they were computed on — the recent-points reservoir — has not
    changed.  The reservoir's monotonic version is the freshness key: a view
    requested under a new version drops every entry of the old one, so the
    memo never serves a vector computed on stale data and its footprint stays
    bounded by one reservoir's worth of searches.

    Objective vectors also depend on the *target* points of the search (a
    per-outlier OS-growth search scores one outlier, self-evolution scores
    the whole reservoir), so entries are additionally keyed by a caller-
    supplied target key.  Hit/miss counters are cumulative across versions;
    ``SPOT.memory_footprint`` reports them.
    """

    def __init__(self) -> None:
        self._version: Optional[int] = None
        self._entries: Dict[Tuple[object, Subspace], Tuple[float, ...]] = {}
        self.hits = 0
        self.misses = 0

    @property
    def version(self) -> Optional[int]:
        """Reservoir version the current entries were computed on."""
        return self._version

    def __len__(self) -> int:
        return len(self._entries)

    def view(self, version: int, target_key: object = None
             ) -> "ObjectiveMemoView":
        """A (version, target)-bound view; a new version clears old entries."""
        if version != self._version:
            self._entries.clear()
            self._version = version
        return ObjectiveMemoView(self, target_key)

    def stats(self) -> Dict[str, int]:
        """Cumulative hit/miss counters and the live entry count."""
        return {"hits": self.hits, "misses": self.misses,
                "entries": len(self._entries)}


class ObjectiveMemoView:
    """One search's handle on an :class:`ObjectiveMemo` (fixed target key)."""

    def __init__(self, memo: ObjectiveMemo, target_key: object) -> None:
        self._memo = memo
        self._key = target_key

    def lookup(self, subspace: Subspace) -> Optional[Tuple[float, ...]]:
        """The memoised vector of ``subspace``, counting the hit or miss."""
        vector = self._memo._entries.get((self._key, subspace))
        if vector is None:
            self._memo.misses += 1
        else:
            self._memo.hits += 1
        return vector

    def store(self, subspace: Subspace, vector: Tuple[float, ...]) -> None:
        """Record a freshly evaluated vector for later searches."""
        self._memo._entries[(self._key, subspace)] = vector


def memo_cache_bytes(cache: Dict[Subspace, Tuple[float, ...]]) -> int:
    """Nominal byte estimate of an objective memo cache.

    Counts the float payload plus a small per-entry allowance for the
    subspace key — a sizing figure for ``SPOT.memory_footprint``, not exact
    CPython object overhead.
    """
    return sum(88 + 8 * len(subspace) for subspace in cache)


def combine_footprints(*footprints: Dict[str, int]) -> Dict[str, int]:
    """Merge objective memory footprints from one learning activity.

    ``memo_entries`` / ``memo_bytes`` add up (they count what the activity's
    searches memoised), while ``training_batch_bytes`` takes the maximum —
    the searches of one learning run all wrap the same training batch, so
    the resident batch size is the largest single view, not the sum.
    """
    combined: Dict[str, int] = {}
    for footprint in footprints:
        for key, value in footprint.items():
            if key == "training_batch_bytes":
                combined[key] = max(combined.get(key, 0), int(value))
            else:
                combined[key] = combined.get(key, 0) + int(value)
    return combined


class SparsityObjectives:
    """Multi-objective sparsity evaluation of candidate subspaces.

    Parameters
    ----------
    training_data:
        The batch of points used by the learning stage.
    grid:
        Grid geometry shared with the online detector.
    target_points:
        The points whose cells' sparsity is being optimised.  During
        whole-batch unsupervised learning this is the full batch; when
        searching the sparse subspaces *of one outlier candidate* it is that
        single point.  Defaults to ``training_data``.
    irsd_cap:
        Upper clip applied to IRSD (see :func:`compute_pcs`).
    density_reference:
        ``"populated"`` (default) measures Relative Density against the
        average mass of the populated cells of the candidate subspace, which
        keeps RD comparable across subspace dimensions; ``"lattice"`` measures
        it against a uniform spread over all ``m^|s|`` lattice cells.  Must
        match the reference the online synapse store uses.
    memo:
        Optional :class:`ObjectiveMemoView` shared across searches over the
        same (reservoir version, target); a memo hit returns the stored
        vector without re-walking the batch.  Memoised vectors are the exact
        floats a fresh evaluation would produce, so the memo never changes a
        search's outcome — only its cost.
    """

    #: Number of objective components returned by :meth:`evaluate`.
    N_OBJECTIVES = 3

    def __init__(self,
                 training_data: Sequence[Sequence[float]],
                 grid: Grid,
                 *,
                 target_points: Optional[Sequence[Sequence[float]]] = None,
                 irsd_cap: float = 100.0,
                 density_reference: str = "hybrid",
                 memo: Optional[ObjectiveMemoView] = None) -> None:
        if density_reference not in ("hybrid", "marginal", "populated", "lattice"):
            raise ConfigurationError(
                "density_reference must be 'hybrid', 'marginal', 'populated' "
                f"or 'lattice', got {density_reference!r}"
            )
        self._density_reference = density_reference
        self._memo = memo
        if not training_data:
            raise ConfigurationError("training_data must not be empty")
        self._data = [tuple(float(v) for v in point) for point in training_data]
        phi = grid.phi
        for point in self._data:
            if len(point) != phi:
                raise ConfigurationError(
                    f"training point of length {len(point)} does not match "
                    f"the {phi}-dimensional grid"
                )
        self._grid = grid
        self._irsd_cap = irsd_cap
        # Per-dimension marginal histograms of the batch, used by the
        # independence expectation (hybrid / marginal references).
        self._marginals = [
            [0.0] * grid.cells_per_dimension for _ in range(phi)
        ]
        for point in self._data:
            for d in range(phi):
                self._marginals[d][grid.interval_index(d, point[d])] += 1.0
        if target_points is None:
            self._targets = self._data
        else:
            self._targets = [tuple(float(v) for v in point) for point in target_points]
            if not self._targets:
                raise ConfigurationError("target_points must not be empty")
            for point in self._targets:
                if len(point) != phi:
                    raise ConfigurationError(
                        "target point dimensionality does not match the grid"
                    )
        # A static batch needs no decay; a unit-window model keeps the PCS
        # arithmetic identical to the online path with decay_factor ~ 1.
        self._model = TimeModel(omega=1, epsilon=0.5, decay_factor=1.0)
        self._cache: Dict[Subspace, Tuple[float, ...]] = {}
        self._evaluations = 0

    # ------------------------------------------------------------------ #
    @property
    def phi(self) -> int:
        """Dimensionality of the data space."""
        return self._grid.phi

    @property
    def evaluations(self) -> int:
        """Number of distinct subspaces evaluated so far (cache misses)."""
        return self._evaluations

    @property
    def grid(self) -> Grid:
        """The grid geometry used for the sparsity computation."""
        return self._grid

    # ------------------------------------------------------------------ #
    def evaluate(self, subspace: Subspace) -> Tuple[float, ...]:
        """Objective vector (lower is sparser/better) of ``subspace``."""
        cached = self._cache.get(subspace)
        if cached is not None:
            return cached
        if self._memo is not None:
            memoised = self._memo.lookup(subspace)
            if memoised is not None:
                self._cache[subspace] = memoised
                return memoised

        self._evaluations += 1
        cells: Dict[Tuple[int, ...], DecayedCellAccumulator] = {}
        width = len(subspace)
        for point in self._data:
            address = self._grid.projected_cell(point, subspace)
            acc = cells.get(address)
            if acc is None:
                acc = DecayedCellAccumulator(width)
                cells[address] = acc
            acc.add(subspace.project(point), 0.0, self._model)

        total_mass = float(len(self._data))
        uniform_stds = [self._grid.uniform_cell_std(d) for d in subspace]

        rd_sum = 0.0
        irsd_sum = 0.0
        for point in self._targets:
            address = self._grid.projected_cell(point, subspace)
            expected = self._expected_mass(address, subspace, cells, total_mass)
            acc = cells.get(address)
            if acc is None:
                # A target sitting in an empty cell of a well-supported region
                # is maximally sparse there (RD = 0); skip unsupported cells.
                continue
            # Exclude the target's own unit contribution so a point does not
            # mask its own sparsity (the detection stage does the same).
            pcs = compute_pcs(acc, expected, uniform_stds,
                              irsd_cap=self._irsd_cap, exclude_weight=1.0)
            rd_sum += pcs.rd
            irsd_sum += pcs.irsd

        n_targets = len(self._targets)
        objectives = (
            rd_sum / n_targets,
            irsd_sum / n_targets,
            len(subspace) / self.phi,
        )
        self._cache[subspace] = objectives
        if self._memo is not None:
            self._memo.store(subspace, objectives)
        return objectives

    def _expected_mass(self, address: Tuple[int, ...], subspace: Subspace,
                       cells: Dict[Tuple[int, ...], DecayedCellAccumulator],
                       total_mass: float) -> float:
        """Expected cell mass under the configured null model (see the store)."""
        if total_mass <= 0.0:
            return 0.0
        reference = self._density_reference
        if reference == "lattice":
            return total_mass / self._grid.cell_count(subspace)
        if reference == "populated" or (reference == "hybrid" and len(subspace) == 1):
            return total_mass / max(1, len(cells))
        expected = total_mass
        for interval, dimension in zip(address, subspace):
            expected *= self._marginals[dimension][interval] / total_mass
        return expected

    def evaluate_population(self, subspaces: Sequence[Subspace]
                            ) -> List[Tuple[float, ...]]:
        """Objective vectors of a whole population (memoised, in order).

        The reference implementation simply loops; the vectorized twin
        (:class:`~repro.moga.batch_objectives.BatchSparsityObjectives`)
        overrides this with fused array passes.  Both fill the memo cache in
        first-occurrence order, which keeps the evaluation archive identical
        across engines.
        """
        return [self.evaluate(subspace) for subspace in subspaces]

    def memory_footprint(self) -> Dict[str, int]:
        """Learning-side memory: memo cache and resident training batch.

        Byte figures count the float payload (plus a small per-entry
        allowance for the memo keys), not exact CPython object overhead —
        they exist so ``SPOT.memory_footprint`` can report learning-side
        memory alongside the synapse store's cell counts.
        """
        memo_bytes = memo_cache_bytes(self._cache)
        batch_bytes = 8 * len(self._data) * self.phi
        if self._targets is not self._data:
            batch_bytes += 8 * len(self._targets) * self.phi
        return {
            "memo_entries": len(self._cache),
            "memo_bytes": memo_bytes,
            "training_batch_bytes": batch_bytes,
        }

    def evaluated_subspaces(self) -> List[Subspace]:
        """Every distinct subspace evaluated so far (the search's archive).

        The genetic search visits many more subspaces than survive into its
        final population; ranking this archive by :meth:`sparsity_score` gives
        the best "top sparse subspaces" the search budget has actually seen.
        """
        return list(self._cache)

    def sparsity_score(self, subspace: Subspace) -> float:
        """Scalar summary used for ranking outside the GA (lower = sparser).

        See :func:`score_objective_vector`.  SST components store this score.
        """
        return score_objective_vector(self.evaluate(subspace), self._irsd_cap)


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Pareto dominance for minimisation: ``a`` dominates ``b``.

    ``a`` dominates ``b`` when it is no worse in every objective and strictly
    better in at least one.
    """
    if len(a) != len(b):
        raise ConfigurationError(
            f"objective vectors differ in length ({len(a)} != {len(b)})"
        )
    at_least_one_better = False
    for ai, bi in zip(a, b):
        if ai > bi:
            return False
        if ai < bi:
            at_least_one_better = True
    return at_least_one_better
