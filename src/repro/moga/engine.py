"""The Multi-Objective Genetic Algorithm engine.

Ties the chromosome encoding, the sparsity objectives, the genetic operators
and the NSGA-II ranking together into the search procedure SPOT uses wherever
the paper says "MOGA is applied": whole-batch unsupervised learning, per-point
sparse-subspace search for CS and OS construction, and the online search run
on newly detected outliers.

The engine is deliberately small and deterministic given its seed; the
benchmark ``A4`` compares its output against an exhaustive enumeration of the
lattice on small instances to quantify how much of the true top-k it recovers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import ConfigurationError
from ..core.subspace import Subspace
from .batch_objectives import make_sparsity_objectives
from .chromosome import Chromosome, unique_chromosomes
from .nsga2 import crowded_comparison_rank, select_survivors
from .objectives import SparsityObjectives
from .operators import binary_tournament, make_offspring


@dataclass(frozen=True)
class MOGAResult:
    """Outcome of one MOGA run.

    Attributes
    ----------
    pareto_front:
        The non-dominated subspaces of the final population with their
        objective vectors, ordered by crowded comparison (best first).
    evaluations:
        Number of distinct subspaces whose objectives were computed — the
        quantity the paper contrasts against exhaustive lattice search.
    generations_run:
        Number of generations actually executed.
    """

    pareto_front: Tuple[Tuple[Subspace, Tuple[float, ...]], ...]
    evaluations: int
    generations_run: int

    def top_subspaces(self, k: int,
                      score: Optional[Callable[[Tuple[float, ...]], float]] = None
                      ) -> List[Tuple[Subspace, float]]:
        """The ``k`` best subspaces of the front with a scalar score each.

        ``score`` converts an objective vector into a scalar (lower is
        better); by default the Relative Density component is used, which is
        the dominant sparsity signal.
        """
        if score is None:
            score = lambda objectives: objectives[0]  # noqa: E731
        ranked = sorted(
            ((subspace, score(objectives))
             for subspace, objectives in self.pareto_front),
            key=lambda item: item[1],
        )
        return ranked[:k]


class MOGAEngine:
    """NSGA-II search for sparse subspaces.

    Parameters
    ----------
    objectives:
        The sparsity objectives to minimise.
    population_size / generations:
        Search budget.
    mutation_rate / crossover_rate:
        Operator rates (see :mod:`repro.moga.operators`).
    max_dimension:
        Largest subspace cardinality the search may propose.
    seed:
        RNG seed; two engines with identical inputs and seeds return
        identical results.
    seeds:
        Optional subspaces injected into the initial population (e.g. the
        current CS during self-evolution).
    """

    def __init__(self,
                 objectives: SparsityObjectives,
                 *,
                 population_size: int = 40,
                 generations: int = 25,
                 mutation_rate: float = 0.05,
                 crossover_rate: float = 0.9,
                 max_dimension: int = 4,
                 seed: int = 0,
                 seeds: Optional[Sequence[Subspace]] = None) -> None:
        if population_size < 4:
            raise ConfigurationError("population_size must be at least 4")
        if generations < 1:
            raise ConfigurationError("generations must be at least 1")
        if max_dimension < 1:
            raise ConfigurationError("max_dimension must be at least 1")
        self._objectives = objectives
        self._population_size = population_size
        self._generations = generations
        self._mutation_rate = mutation_rate
        self._crossover_rate = crossover_rate
        self._max_dimension = min(max_dimension, objectives.phi)
        self._rng = random.Random(seed)
        self._seed_subspaces = list(seeds) if seeds else []

    # ------------------------------------------------------------------ #
    def _initial_population(self) -> List[Chromosome]:
        population: List[Chromosome] = []
        for subspace in self._seed_subspaces:
            chromosome = Chromosome.from_subspace(subspace, self._objectives.phi)
            population.append(chromosome.repaired(self._max_dimension, self._rng))
        while len(population) < self._population_size:
            population.append(
                Chromosome.random(self._objectives.phi, self._max_dimension,
                                  self._rng)
            )
        return unique_chromosomes(population)[: self._population_size]

    def _evaluate(self, population: Sequence[Chromosome]
                  ) -> List[Tuple[float, ...]]:
        subspaces = [ch.to_subspace() for ch in population]
        # Whole-generation evaluation: objectives exposing
        # evaluate_population (both bundled implementations do) score every
        # uncached subspace of the generation in fused array passes; plain
        # objective objects fall back to the per-subspace loop.
        evaluate_population = getattr(self._objectives,
                                      "evaluate_population", None)
        if evaluate_population is not None:
            return list(evaluate_population(subspaces))
        return [self._objectives.evaluate(subspace) for subspace in subspaces]

    def _breed(self, population: Sequence[Chromosome],
               ranks: Sequence[Tuple[int, float]]) -> List[Chromosome]:
        rank_of: Dict[Tuple[bool, ...], Tuple[int, float]] = {
            ch.genes: ranks[i] for i, ch in enumerate(population)
        }

        def better(a: Chromosome, b: Chromosome) -> Chromosome:
            return a if rank_of[a.genes] <= rank_of[b.genes] else b

        offspring: List[Chromosome] = []
        while len(offspring) < self._population_size:
            parent_a = binary_tournament(population, better, self._rng)
            parent_b = binary_tournament(population, better, self._rng)
            child_a, child_b = make_offspring(
                parent_a, parent_b, self._rng,
                crossover_rate=self._crossover_rate,
                mutation_rate=self._mutation_rate,
                max_dimension=self._max_dimension,
            )
            offspring.append(child_a)
            offspring.append(child_b)
        return offspring[: self._population_size]

    # ------------------------------------------------------------------ #
    def run(self) -> MOGAResult:
        """Execute the search and return the final Pareto front."""
        population = self._initial_population()
        generations_run = 0

        for _ in range(self._generations):
            generations_run += 1
            objectives = self._evaluate(population)
            ranks = crowded_comparison_rank(objectives)
            offspring = self._breed(population, ranks)

            combined = unique_chromosomes(list(population) + offspring)
            combined_objectives = self._evaluate(combined)
            survivor_indices = select_survivors(combined_objectives,
                                                self._population_size)
            population = [combined[i] for i in survivor_indices]

        final_objectives = self._evaluate(population)
        ranks = crowded_comparison_rank(final_objectives)
        order = sorted(range(len(population)), key=lambda i: ranks[i])
        front = tuple(
            (population[i].to_subspace(), final_objectives[i])
            for i in order
            if ranks[i][0] == 0
        )
        return MOGAResult(
            pareto_front=front,
            evaluations=self._objectives.evaluations,
            generations_run=generations_run,
        )


def rank_sparse_subspaces(objectives,
                          *,
                          top_k: int = 10,
                          population_size: int = 40,
                          generations: int = 25,
                          mutation_rate: float = 0.05,
                          crossover_rate: float = 0.9,
                          max_dimension: int = 4,
                          seed: int = 0,
                          seeds: Optional[Sequence[Subspace]] = None
                          ) -> List[Tuple[Subspace, float]]:
    """Run MOGA over pre-built objectives and rank its evaluation archive.

    Callers that need the objectives afterwards (memo statistics, extra
    scoring) build them with
    :func:`~repro.moga.batch_objectives.make_sparsity_objectives` and call
    this; :func:`find_sparse_subspaces` wraps both steps.
    """
    engine = MOGAEngine(
        objectives,
        population_size=population_size,
        generations=generations,
        mutation_rate=mutation_rate,
        crossover_rate=crossover_rate,
        max_dimension=max_dimension,
        seed=seed,
        seeds=seeds,
    )
    engine.run()
    # Rank the whole archive of evaluated subspaces, not just the final
    # Pareto front: the "top sparse subspaces" are the best the search budget
    # has seen anywhere along the way.
    scored = [
        (subspace, objectives.sparsity_score(subspace))
        for subspace in objectives.evaluated_subspaces()
    ]
    scored.sort(key=lambda item: item[1])
    return scored[:top_k]


def find_sparse_subspaces(training_data: Sequence[Sequence[float]],
                          grid,
                          *,
                          target_points: Optional[Sequence[Sequence[float]]] = None,
                          top_k: int = 10,
                          population_size: int = 40,
                          generations: int = 25,
                          mutation_rate: float = 0.05,
                          crossover_rate: float = 0.9,
                          max_dimension: int = 4,
                          seed: int = 0,
                          seeds: Optional[Sequence[Subspace]] = None,
                          engine: str = "python"
                          ) -> List[Tuple[Subspace, float]]:
    """Convenience wrapper: run MOGA and return the top-k sparse subspaces.

    Returns (subspace, sparsity score) pairs, sparsest first, where the score
    is :meth:`SparsityObjectives.sparsity_score` so it is comparable across
    runs and usable directly as an SST ranking score.  ``engine`` picks the
    objective implementation (``"python"`` reference loops or
    ``"vectorized"`` batch kernels — same seeds give the same subspaces and
    scores on either, see ``tests/test_moga_parity.py``).
    """
    objectives = make_sparsity_objectives(training_data, grid, engine=engine,
                                          target_points=target_points)
    return rank_sparse_subspaces(
        objectives,
        top_k=top_k,
        population_size=population_size,
        generations=generations,
        mutation_rate=mutation_rate,
        crossover_rate=crossover_rate,
        max_dimension=max_dimension,
        seed=seed,
        seeds=seeds,
    )
