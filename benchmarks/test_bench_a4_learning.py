"""Benchmark L1 — learning-stage throughput of the two objective engines.

PRs 1-2 made detection fast; the learning half of SPOT (whole-batch MOGA,
per-outlier online MOGA, CS self-evolution) used to evaluate every candidate
subspace with per-point Python loops.  This benchmark runs the E4-style
learning workload through the reference objectives and the
population-vectorized batch objectives and asserts that

* both engines build the **identical** SST (learning's analogue of T1's
  ``flags_agree`` — exact objective parity is enforced per float in
  ``tests/test_moga_parity.py``), and
* the vectorized learning path is decisively faster.  The committed
  ``BENCH_learning.json`` (regenerated with ``spot-demo bench-learn``)
  records well above the 5x acceptance floor on the full 10-d/20k workload;
  the assertion here uses a 2x floor on trimmed sizes so shared-CI jitter
  cannot flake the suite.
"""

from repro.eval.experiments import experiment_l1_learning


def test_bench_l1_learning(experiment_runner):
    report = experiment_runner(
        experiment_l1_learning,
        n_training=300,
        n_detection=1500,
        n_recent=600,
        n_outlier_searches=6,
        n_evolution_rounds=3,
    )
    rows = {row["engine"]: row for row in report.rows}
    assert set(rows) == {"python", "vectorized"}
    vec = rows["vectorized"]
    # Identical learning decisions out of both engines...
    assert vec["sst_identical"] is True
    assert rows["python"]["objective_memo_entries"] == \
        vec["objective_memo_entries"]
    # ...and a decisive speedup on every learning stage.
    assert vec["learn_speedup"] >= 2.0, (
        f"vectorized learn() only {vec['learn_speedup']}x faster")
    assert vec["online_moga_speedup"] >= 2.0, (
        f"vectorized online MOGA only {vec['online_moga_speedup']}x faster")
    assert vec["combined_speedup"] >= 2.0, (
        f"vectorized learning path only {vec['combined_speedup']}x faster")
