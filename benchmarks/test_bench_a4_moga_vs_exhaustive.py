"""Experiment A4 — MOGA search quality versus exhaustive lattice enumeration.

Finding outlying subspaces is the NP-hard core of the problem; the paper's
answer is a multi-objective genetic search over the lattice.  On instances
small enough to enumerate exhaustively, the benchmark measures how much of
the true top-k sparsest subspaces MOGA recovers and how many subspace
evaluations it spends doing so.

Expected shape: recovery of most of the exhaustive top-k, with an evaluation
count that becomes a small fraction of the lattice as dimensionality grows.
"""

from repro.eval.experiments import experiment_a4_moga_vs_exhaustive


def test_bench_a4_moga_vs_exhaustive(experiment_runner):
    report = experiment_runner(
        experiment_a4_moga_vs_exhaustive,
        dimension_settings=(8, 10, 12),
        max_dimension=3,
        top_k=10,
        n_points=400,
        seed=43,
    )

    by_dimension = {row["dimensions"]: row for row in report.rows}
    assert set(by_dimension) == {8, 10, 12}

    for row in report.rows:
        assert row["recovery_rate"] >= 0.6
        assert row["moga_evaluations"] <= row["lattice_subspaces"]

    # The evaluation saving must widen with dimensionality: at phi=12 the GA
    # touches a clearly smaller fraction of the lattice than at phi=8.
    assert by_dimension[12]["evaluation_fraction"] < \
        by_dimension[8]["evaluation_fraction"]
