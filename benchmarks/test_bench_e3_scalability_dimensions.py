"""Experiment E3 — efficiency versus stream dimensionality.

The paper's efficiency argument: because every arriving point is only checked
against the subspaces of the SST, the per-point cost grows with the SST
budget, not with the 2^phi subspace lattice.  The benchmark measures per-point
detection cost for SPOT (fixed SST budget: 1-d FS plus a fixed-size CS), the
exact sliding-window kNN detector (cost proportional to window x phi) and the
sparsity-coefficient detector (periodic full rebuilds), at increasing
dimensionality.

Expected shape: SPOT's cost grows roughly linearly in phi (the SST grows by
one 1-d subspace per added attribute); the kNN baseline's absolute cost is
higher and grows at least as fast; no detector's cost grows combinatorially.
"""

from repro.eval.experiments import experiment_e3_scalability_dimensions


def test_bench_e3_scalability_dimensions(experiment_runner):
    dimension_settings = (10, 20, 40, 80)
    report = experiment_runner(
        experiment_e3_scalability_dimensions,
        dimension_settings=dimension_settings,
        n_training=400,
        n_detection=800,
        seed=17,
    )

    spot_cost = {row["dimensions"]: row["seconds_per_1k_points"]
                 for row in report.rows if row["detector"] == "SPOT"}
    assert set(spot_cost) == set(dimension_settings)

    # Growing phi by 8x must not grow SPOT's per-point cost combinatorially:
    # the SST budget grows linearly, so allow a generous linear-ish factor.
    growth = spot_cost[80] / spot_cost[10]
    assert growth < 30.0

    # Every detector must have processed the stream at a finite, positive rate.
    assert all(row["points_per_second"] > 0 for row in report.rows)
