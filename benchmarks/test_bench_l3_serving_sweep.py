"""Benchmark L3 — the serving-pressure sweep (the async win's envelope).

E5 measured serving without learning and L2 measured the learning service on
one workload; L3 closes the ROADMAP's combined-benchmark item by sweeping the
*learning pressure* itself — a declared :class:`~repro.eval.spec.Grid` over
(outlier rate x CS evolution period) cells, each serving the same
multi-tenant workload with online MOGA inline vs deferred.  The committed
``BENCH_serving_sweep.json`` (regenerated with ``spot-demo bench
serving-sweep``) records the full grid; this guard runs a trimmed 2x2 grid
through the registered spec — the same path the CLI takes — and asserts the
properties every cell is accountable for:

* **Parity everywhere** — in every cell, deferring the searches changes no
  decision and no final SST (the learning service's contract must hold at
  every pressure setting, not just the L2 point).
* **Pressure applied** — every cell triggers OS-growth searches, and the
  evolution-period axis deterministically switches self-evolution on and off
  (a higher planted rate does not *guarantee* more detected outliers on tiny
  workloads — the training distribution shifts with it — so no monotonicity
  is asserted on that axis).
* **Envelope recorded** — every cell carries both variants' detection-path
  p95 and the speedup, the numbers the committed artifact maps the envelope
  with (no latency floor is asserted per cell: tiny grid cells on single-core
  CI can land under coalescing noise; the committed full-size grid is where
  the magnitudes live).
"""

from repro.eval import get_experiment


def test_bench_l3_serving_sweep(benchmark):
    spec = get_experiment("L3")
    report = benchmark.pedantic(
        lambda: spec.run(
            outlier_rates=(0.01, 0.06),
            evolution_periods=(0, 150),
            n_tenants=3,
            n_detection_per_tenant=200,
            learning_workers=2,
        ),
        rounds=1, iterations=1, warmup_rounds=0)

    from repro.eval import format_table
    print()
    print(f"[{report.experiment_id}] {report.title}")
    print(format_table(list(report.rows), columns=report.column_names()))

    assert len(report.rows) == 4  # 2 x 2 grid, one row per cell
    by_cell = {(row["outlier_rate"], row["evolution_period"]): row
               for row in report.rows}
    assert len(by_cell) == 4

    for cell, row in by_cell.items():
        # The learning-service contract must hold at every pressure setting.
        assert row["decisions_match"] is True, f"decision drift in {cell}"
        assert row["sst_identical"] is True, f"SST drift in {cell}"
        assert row["sync_path_p95_ms"] > 0
        assert row["async_path_p95_ms"] > 0
        assert row["path_p95_speedup"] > 0
        # Learning pressure was actually applied in every cell.
        assert row["searches"] > 0, f"no OS-growth searches in {cell}"

    # The evolution-period axis deterministically gates self-evolution.
    for rate in (0.01, 0.06):
        assert by_cell[(rate, 0)]["evolutions"] == 0
        assert by_cell[(rate, 150)]["evolutions"] > 0
