"""Experiment F1 — the end-to-end pipeline of the paper's Figure 1.

Regenerates the architecture figure as a running system: offline learning
(FS enumeration, lead clustering + MOGA for CS, per-example MOGA for OS)
followed by online detection with decayed BCS/PCS maintenance, OS growth and
periodic CS self-evolution.  The benchmark reports the wall-clock split
between the two stages and the detection quality reached on a 20-d synthetic
stream with 5 % planted projected outliers.
"""

from repro.eval.experiments import experiment_f1_pipeline


def test_bench_f1_pipeline(experiment_runner):
    report = experiment_runner(
        experiment_f1_pipeline,
        dimensions=20, n_training=600, n_detection=1200, seed=5,
    )

    learning, detection = report.rows
    # The learning stage must have produced all three SST components...
    assert learning["FS"] > 0
    assert learning["CS"] > 0
    assert learning["OS"] > 0
    # ...and the detection stage must have processed the whole stream and
    # caught a substantial share of the planted outliers without flagging
    # most of the stream (effectiveness proper is benchmark E1's job).
    assert detection["points"] == 1200
    assert detection["recall"] >= 0.3
    assert detection["outliers_flagged"] < 0.5 * detection["points"]
