"""Benchmark L2 — the learning service (online MOGA off the hot path).

The asynchronous learning service exists to buy one number: the detection
path's tail latency with online learning enabled.  Inline mode charges every
per-outlier OS-growth search and every CS self-evolution round to the
``process_batch`` call that triggered it, so the scoring calls around a
trigger inherit the whole MOGA bill; deferred mode moves those searches to
the coordinator pool and applies the published SSTs at deterministic apply
points.  This benchmark pushes one multi-tenant workload through both modes
and asserts the two properties the subsystem is accountable for:

* **Parity** — decisions and final SSTs are identical across modes and
  worker counts (requests capture the reservoir snapshot and the search
  randomness at the trigger position, so evaluation placement cannot change
  outcomes).
* **Hot-path relief** — detection-path p95 latency under ``async`` is well
  below the inline baseline.  The committed ``BENCH_learning_service.json``
  (regenerated with ``spot-demo bench-learn-service``) records the full-size
  numbers; the assertion here uses a 2x floor so single-core CI runners
  cannot flake the suite (observed margins are several times wider).

Sizes are trimmed relative to the CLI defaults so the tier-1 run stays fast.
"""

from repro.eval.experiments import experiment_l2_learning_service


def test_bench_l2_learning_service(experiment_runner):
    report = experiment_runner(
        experiment_l2_learning_service,
        n_tenants=4,
        dimensions=8,
        n_detection_per_tenant=300,
        n_shards=2,
        learning_workers=2,
        self_evolution_period=150,
        relearn_period=260,
    )
    rows = {row["variant"]: row for row in report.rows}
    sync_row = rows["sync-inline"]
    async_rows = [rows["async-1"], rows["async-2"]]
    # Online learning actually fired — otherwise the comparison is vacuous.
    assert sync_row["searches"] + sync_row["evolutions"] \
        + sync_row["relearns"] > 0
    for row in async_rows:
        # Moving the searches off the hot path must not change one decision.
        assert row["decisions_match_sync"] is True
        assert row["sst_identical"] is True
        assert row["searches"] == sync_row["searches"]
        assert row["evolutions"] == sync_row["evolutions"]
        assert row["relearns"] == sync_row["relearns"]
        # ...while decisively relieving the detection path's tail.
        assert row["path_p95_speedup"] >= 2.0, (
            f"{row['variant']}: detection-path p95 only "
            f"{row['path_p95_speedup']}x below the inline baseline"
        )
