"""Experiment E4 — efficiency versus stream length.

One-pass maintenance is the other half of the paper's efficiency claim: BCS
and PCS are updated incrementally, so the per-point cost must not grow as the
stream gets longer, and the decayed summaries (plus pruning) must keep the
number of live cell summaries bounded instead of growing with the stream.

Expected shape: seconds-per-1k-points stays roughly flat from 2k to 16k
processed points, and the summary footprint (populated base and projected
cells) plateaus rather than growing linearly with the stream.
"""

from repro.eval.experiments import experiment_e4_scalability_stream_length


def test_bench_e4_scalability_stream_length(experiment_runner):
    lengths = (2000, 4000, 8000, 16000)
    report = experiment_runner(
        experiment_e4_scalability_stream_length,
        lengths=lengths,
        dimensions=20,
        n_training=400,
        seed=19,
    )

    by_length = {row["stream_length"]: row for row in report.rows}
    assert set(by_length) == set(lengths)

    # Per-point cost must stay roughly constant over an 8x longer stream.
    shortest = by_length[lengths[0]]["seconds_per_1k_points"]
    longest = by_length[lengths[-1]]["seconds_per_1k_points"]
    assert longest < 3.0 * shortest

    # The summary footprint must not grow linearly with the stream: an 8x
    # longer stream may populate more cells, but far fewer than 8x as many.
    cells_short = by_length[lengths[0]]["projected_cells"]
    cells_long = by_length[lengths[-1]]["projected_cells"]
    assert cells_long < 4.0 * max(cells_short, 1)
