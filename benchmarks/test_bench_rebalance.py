"""Benchmark R2 — live fleet resharding with zero decision drift.

The elastic-fleet acceptance criterion, run as a benchmark so the committed
``BENCH_rebalance.json`` (regenerated with ``python -m repro.cli bench
rebalance``) tracks the hot-path cost of a live migration across PRs.  Two
runs of the same multiplexed workload: a steady-state fleet that never
reshards, and a live run resized through every step of the shard plan
(split, then merge) mid-stream by the rebalancer.

The assertions here are the subsystem's contract, not its timings:

* **Zero decision drift** — the resharded run's decisions and final
  per-shard SSTs are identical to a single-threaded oracle that reenacts
  the same topology changes with reference detectors (clone the donor at
  the boundary on a grow, drop the retired shards on a shrink, route with
  the same ring).
* **Migrations commit at their declared boundaries** — every resize in the
  plan lands, in order, at the requested stream positions.

The stall/steady-p95 ratio (``stall_bounded``) is timing-dependent, so the
test asserts the accounting is present and well-formed, never a bound —
the bound is judged on the recorded artifact, where the run is full-sized.

Sizes are trimmed relative to the CLI defaults so the tier-1 run stays fast.
"""

from repro.eval.experiments import experiment_r2_rebalance


def test_bench_r2_rebalance(experiment_runner):
    report = experiment_runner(
        experiment_r2_rebalance,
        n_tenants=4,
        dimensions=8,
        n_detection_per_tenant=150,
        shard_plan=(2, 3, 2),
        boundaries=(0.4, 0.7),
    )
    rows = {row["variant"]: row for row in report.rows}

    steady = rows["steady-state"]
    assert steady["n_shards"] == 2
    assert steady["points"] == 600

    reshard = rows["live-reshard"]
    # The fleet actually walked the whole plan and ended at its last size.
    assert reshard["shard_plan"] == [2, 3, 2]
    assert reshard["n_shards"] == 2
    assert reshard["reshard_points"] == [240, 420]
    # The headline property: live resharding is loss-free and
    # decision-identical to the topology-reenacting oracle.
    assert reshard["decisions_identical"] is True
    assert reshard["sst_identical"] is True
    # The stall accounting is recorded (the bound itself is timing).
    assert reshard["migration_stall_ms"] > 0.0
    assert isinstance(reshard["stall_bounded"], bool)

    grow = rows["migration-grow-2to3"]
    shrink = rows["migration-shrink-3to2"]
    assert grow["committed"] is True and shrink["committed"] is True
    assert grow["boundary"] == 240
    assert shrink["boundary"] == 420
    assert (grow["from_shards"], grow["to_shards"]) == (2, 3)
    assert (shrink["from_shards"], shrink["to_shards"]) == (3, 2)
