"""Experiment A1 — ablation of the SST composition (FS / CS / OS).

The paper argues the three SST components "supplement each other".  The
benchmark plants 3-dimensional outlying subspaces while capping FS at 1-d
subspaces, so the fixed component alone cannot see the outliers; the
clustering-based component (unsupervised learning) and the outlier-driven
component (supervised learning on labelled examples) have to contribute the
higher-dimensional subspaces.

Expected shape: recall rises monotonically (or at least never falls) from
"FS only" through "FS+CS" to "FS+CS+OS".
"""

from repro.eval.experiments import experiment_a1_sst_ablation


def test_bench_a1_sst_ablation(experiment_runner):
    report = experiment_runner(
        experiment_a1_sst_ablation,
        dimensions=20,
        n_training=800,
        n_detection=1500,
        outlier_rate=0.04,
        seed=29,
    )

    by_variant = {row["variant"]: row for row in report.rows}
    fs_only = by_variant["FS only"]
    fs_cs = by_variant["FS+CS"]
    full = by_variant["FS+CS+OS"]

    # Each learned component may only add subspaces.
    assert fs_cs["CS"] > 0
    assert full["OS"] > 0

    # The learned components must add recall over the 1-d-only template, and
    # the full template must be at least as good as the intermediate one.
    assert fs_cs["recall"] >= fs_only["recall"]
    assert full["recall"] >= fs_cs["recall"]
    assert full["recall"] > fs_only["recall"]
