"""Experiment S1 — sensitivity of SPOT to its main knobs.

The paper promises a comparative study "under a wide spectrum of settings".
This benchmark sweeps the two decision-rule knobs (the RD threshold and the
density reference null model) on the standard synthetic workload and reports
the precision / recall / false-alarm trade-off per setting, so the shipped
defaults can be judged against their neighbourhood.

Expected shape: raising the RD threshold trades precision for recall
monotonically-ish; the hybrid density reference dominates the plain
populated-average reference on F1 for combination-style projected outliers.
"""

from repro import SPOTConfig
from repro.eval import format_table, sweep_config_parameter, synthetic_workload


def _base_config():
    return SPOTConfig(
        cells_per_dimension=4, omega=500, max_dimension=2, cs_size=15,
        moga_population=20, moga_generations=8, moga_max_dimension=3,
        clustering_runs=2, rd_threshold=0.02, min_expected_mass=4.0,
        random_seed=7,
    )


def test_bench_s1_parameter_sensitivity(benchmark):
    workload = synthetic_workload(dimensions=20, n_training=700,
                                  n_detection=1200, outlier_rate=0.03, seed=11)

    def run_sweeps():
        threshold_rows = sweep_config_parameter(
            workload, _base_config(), "rd_threshold", [0.01, 0.02, 0.05, 0.1])
        reference_rows = sweep_config_parameter(
            workload, _base_config(), "density_reference",
            ["hybrid", "populated", "lattice"])
        rule_rows = sweep_config_parameter(
            workload, _base_config(), "decision_rule", ["rd", "poisson"])
        return threshold_rows, reference_rows, rule_rows

    threshold_rows, reference_rows, rule_rows = benchmark.pedantic(
        run_sweeps, rounds=1, iterations=1, warmup_rounds=0)

    print()
    print("[S1] RD-threshold sweep")
    print(format_table(threshold_rows,
                       columns=["rd_threshold", "precision", "recall", "f1",
                                "false_alarm_rate", "auc"]))
    print("[S1] density-reference sweep")
    print(format_table(reference_rows,
                       columns=["density_reference", "precision", "recall",
                                "f1", "false_alarm_rate", "auc"]))
    print("[S1] decision-rule sweep")
    print(format_table(rule_rows,
                       columns=["decision_rule", "precision", "recall", "f1",
                                "false_alarm_rate", "auc"]))

    recalls = [row["recall"] for row in threshold_rows]
    false_alarms = [row["false_alarm_rate"] for row in threshold_rows]
    # A looser threshold can only flag more points: recall and false alarms
    # are both (weakly) non-decreasing along the sweep.
    assert all(a <= b + 1e-9 for a, b in zip(recalls, recalls[1:]))
    assert all(a <= b + 1e-9 for a, b in zip(false_alarms, false_alarms[1:]))

    by_reference = {row["density_reference"]: row for row in reference_rows}
    assert by_reference["hybrid"]["f1"] >= by_reference["lattice"]["f1"]

    # The Poisson rule trades precision for recall relative to the RD rule.
    by_rule = {row["decision_rule"]: row for row in rule_rows}
    assert by_rule["poisson"]["recall"] >= by_rule["rd"]["recall"] - 0.05
