"""The bench-history database over the *committed* artifacts.

The other files in this directory regenerate experiments; this one guards
the regression pipeline itself:

* every entry recorded under ``benchmarks/history/`` parses, carries the
  ``spot-bench-history/v1`` schema with sequential run indexes, and names
  the commit it was stamped from;
* the regression checker is clean over the committed history (the CI
  ``bench-regression`` job runs the same check through the CLI);
* the checker is not vacuous: distilling a committed ``BENCH_*.json``
  payload into a fresh history and degrading its directed metrics tenfold
  is flagged, in both directions.
"""

import json
from pathlib import Path

from repro.obs import BenchHistory, classify_metric, extract_metrics

REPO_ROOT = Path(__file__).resolve().parent.parent
HISTORY = BenchHistory(REPO_ROOT / "benchmarks" / "history")


def test_committed_history_entries_validate():
    for bench_id in HISTORY.benches():
        entries = HISTORY.entries(bench_id)
        assert [entry["run_index"] for entry in entries] == \
            list(range(len(entries)))
        for entry in entries:
            assert entry["schema"] == "spot-bench-history/v1"
            assert entry["bench"] == bench_id
            assert entry["provenance"].get("git"), \
                f"{bench_id}: history entries must name their commit"
            assert entry["metrics"], f"{bench_id}: entry distilled no rows"
            for row_metrics in entry["metrics"].values():
                assert all(isinstance(value, (int, float))
                           for value in row_metrics.values())


def test_committed_history_has_no_regressions():
    findings = []
    for bench_id in HISTORY.benches():
        findings.extend(HISTORY.check(bench_id))
    assert findings == [], [finding.describe() for finding in findings]


def _directed_payload():
    """The first committed BENCH_*.json whose rows carry directed metrics."""
    for artifact in sorted(REPO_ROOT.glob("BENCH_*.json")):
        payload = json.loads(artifact.read_text())
        directed = [
            metric
            for row_metrics in extract_metrics(payload).values()
            for metric in row_metrics
            if classify_metric(metric) is not None
        ]
        if directed:
            return artifact.stem.replace("BENCH_", ""), payload
    raise AssertionError("no committed artifact carries directed metrics")


def _degraded(payload):
    """The payload with every directed metric moved 10x the wrong way."""
    slowed = json.loads(json.dumps(payload))
    for row in slowed["rows"]:
        for metric, value in list(row.items()):
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                continue
            direction = classify_metric(metric)
            if direction == "higher":
                row[metric] = value / 10.0
            elif direction == "lower":
                row[metric] = value * 10.0
    return slowed


def test_checker_flags_degraded_committed_payload(tmp_path):
    bench_id, payload = _directed_payload()
    history = BenchHistory(tmp_path)
    history.record(bench_id, payload)
    history.record(bench_id, payload)
    assert history.check(bench_id, candidate=payload) == []
    findings = history.check(bench_id, candidate=_degraded(payload))
    assert findings, "a 10x degradation must be flagged"
    directions = {finding.direction for finding in findings}
    assert "higher" in directions or "lower" in directions
    for finding in findings:
        assert finding.bench == bench_id
        if finding.direction == "higher":
            assert finding.ratio < 0.5
        else:
            assert finding.ratio > 1.5
