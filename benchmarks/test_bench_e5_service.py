"""Benchmark E5 — the sharded multi-tenant detection service.

The serving layer exists to exploit the vectorized engine's batch economics:
arrivals from many tenants are hash-routed to detector shards and coalesced
into large ``process_batch`` calls.  This benchmark pushes one multiplexed
workload through the three serving shapes (offline partitioned reference,
naive per-arrival single shard, sharded micro-batched service) and asserts
the two properties the serving layer is accountable for:

* **Parity** — the sharded service's per-point decisions are identical to
  independent detectors fed the router's partitions directly (stable routing
  + FIFO queues + the prefix-commit batch contract make batching invisible).
* **Speedup** — the micro-batched service beats per-arrival serving
  decisively.  The committed ``BENCH_service.json`` (regenerated with
  ``spot-demo serve --bench-out BENCH_service.json``) records the full-size
  numbers; the assertion here uses a 2x floor so single-core CI runners
  cannot flake the suite (observed margins are an order of magnitude wider).

Sizes are trimmed relative to the ``spot-demo serve`` defaults so the tier-1
run stays fast.
"""

from repro.eval.experiments import experiment_e5_service


def test_bench_e5_service(experiment_runner):
    report = experiment_runner(
        experiment_e5_service,
        n_tenants=4,
        dimensions=8,
        n_detection_per_tenant=400,
        n_shards=4,
        max_batch=256,
    )
    rows = {row["variant"]: row for row in report.rows}
    service_row = rows["sharded-service"]
    naive_row = rows["single-shard-serving"]
    assert service_row["points"] == naive_row["points"]
    # Sharding + micro-batching must not change a single decision...
    assert service_row["decisions_match_reference"] is True
    # ...while beating per-arrival serving decisively.
    assert service_row["speedup"] >= 2.0, (
        f"sharded service only {service_row['speedup']}x faster than "
        f"per-arrival serving"
    )
    # Coalescing actually happened (the speedup must come from batching,
    # not from measurement noise).
    assert service_row["mean_batch_size"] > 4.0
