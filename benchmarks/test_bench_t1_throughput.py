"""Benchmark T1 — detection throughput of the two engines.

The vectorized batch engine exists for one reason: the paper's constant-work-
per-point maintenance claim only translates into stream-scale throughput if
that constant is paid in array passes, not Python-interpreter steps.  This
benchmark runs the same E4-style workload (fixed SST budget, long detection
segment) through the pure-Python reference engine and the vectorized engine
and asserts that

* both engines flag exactly the same number of outliers (the cheap, coarse
  cross-check; the fine-grained per-point parity lives in
  ``tests/test_process_batch_parity.py``), and
* the vectorized engine is decisively faster.  The committed
  ``BENCH_throughput.json`` (regenerated with ``spot-demo bench``) records
  ~10-15x on the 10-d/20k acceptance workload; the assertion here uses a 2x
  floor so shared-CI jitter cannot flake the suite, and
* the observability hooks stay within budget: the ``obs_overhead`` mode's
  ``vectorized+obs`` row measures evidence capture + flight-ring stamping,
  and its ``disabled_overhead_pct`` (a noise-robust A/A statistic over
  repeated disabled-path runs) must stay under the 3% detection-path
  budget the bench payloads advertise.

The sizes here are trimmed relative to ``spot-demo bench`` defaults so the
tier-1 run stays fast.
"""

from repro.eval.experiments import experiment_t1_throughput
from repro.eval.registry import BENCHES
from repro.eval.spec import build_bench_payload


def test_bench_t1_throughput(experiment_runner):
    report = experiment_runner(
        experiment_t1_throughput,
        dimension_settings=(10, 30),
        lengths={10: 6000, 30: 3000},
        obs_overhead=True,
    )
    rows = {(row["dimensions"], row["engine"]): row for row in report.rows}
    for phi in (10, 30):
        python_row = rows[(phi, "python")]
        vectorized_row = rows[(phi, "vectorized")]
        assert python_row["points"] == vectorized_row["points"]
        # Same flags out of both engines...
        assert vectorized_row["flags_agree"] is True
        # ...and a decisive speedup from the batch engine.
        assert vectorized_row["speedup"] >= 2.0, (
            f"vectorized engine only {vectorized_row['speedup']}x faster "
            f"at {phi}-d"
        )
        obs_row = rows[(phi, "vectorized+obs")]
        assert obs_row["points"] == vectorized_row["points"]
        # Every decision of the run fits the ring's view of recent history
        # (the ring is bounded; entries just must have been stamped).
        assert obs_row["flight_entries"] > 0
        # The disabled path must be indistinguishable from the plain
        # engine: under the 3% budget the payload telemetry advertises.
        assert obs_row["disabled_overhead_pct"] < 3.0, (
            f"obs hooks cost {obs_row['disabled_overhead_pct']}% at {phi}-d "
            f"with evidence and recording off"
        )


def test_bench_payload_reports_recorder_overhead(experiment_runner):
    report = experiment_runner(
        experiment_t1_throughput,
        dimension_settings=(10,),
        lengths={10: 2000},
        obs_overhead=True,
    )
    spec = BENCHES["throughput"]
    params = spec.schema.resolve({})
    payload = build_bench_payload(
        spec, params, report, stamp={"git": "test", "dirty": False})
    telemetry = payload["telemetry"]
    assert telemetry["detection_path_overhead_budget_pct"] == 3.0
    assert "recorder_on_overhead_pct" in telemetry
    assert telemetry["recorder_off_overhead_pct"] < 3.0
