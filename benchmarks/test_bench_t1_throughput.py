"""Benchmark T1 — detection throughput of the two engines.

The vectorized batch engine exists for one reason: the paper's constant-work-
per-point maintenance claim only translates into stream-scale throughput if
that constant is paid in array passes, not Python-interpreter steps.  This
benchmark runs the same E4-style workload (fixed SST budget, long detection
segment) through the pure-Python reference engine and the vectorized engine
and asserts that

* both engines flag exactly the same number of outliers (the cheap, coarse
  cross-check; the fine-grained per-point parity lives in
  ``tests/test_process_batch_parity.py``), and
* the vectorized engine is decisively faster.  The committed
  ``BENCH_throughput.json`` (regenerated with ``spot-demo bench``) records
  ~10-15x on the 10-d/20k acceptance workload; the assertion here uses a 2x
  floor so shared-CI jitter cannot flake the suite.

The sizes here are trimmed relative to ``spot-demo bench`` defaults so the
tier-1 run stays fast.
"""

from repro.eval.experiments import experiment_t1_throughput


def test_bench_t1_throughput(experiment_runner):
    report = experiment_runner(
        experiment_t1_throughput,
        dimension_settings=(10, 30),
        lengths={10: 6000, 30: 3000},
    )
    rows = {(row["dimensions"], row["engine"]): row for row in report.rows}
    for phi in (10, 30):
        python_row = rows[(phi, "python")]
        vectorized_row = rows[(phi, "vectorized")]
        assert python_row["points"] == vectorized_row["points"]
        # Same flags out of both engines...
        assert vectorized_row["flags_agree"] is True
        # ...and a decisive speedup from the batch engine.
        assert vectorized_row["speedup"] >= 2.0, (
            f"vectorized engine only {vectorized_row['speedup']}x faster "
            f"at {phi}-d"
        )
