"""Experiment E2 — effectiveness on simulated real-life streams.

The paper promises experiments on "real-life streaming data sets"; the
environment is offline, so the workloads are the KDD-Cup-99-style intrusion
simulator (34 continuous features, dominant benign/DoS traffic, rare attack
classes anomalous only in class-specific feature subsets) and the
sensor-field simulator (correlated channels, localised faults).  SPOT runs
its supervised learning process on the KDD workload (expert-labelled attack
examples building the OS component), mirroring the paper's description of
incorporating domain knowledge.

Expected shape: SPOT detects a clear majority of the rare attacks/faults at a
single-digit false-alarm rate, while the full-space grid detector detects
almost none of them.
"""

from repro.eval.experiments import experiment_e2_effectiveness_kdd


def test_bench_e2_effectiveness_kdd(experiment_runner):
    report = experiment_runner(
        experiment_e2_effectiveness_kdd,
        n_training=900,
        n_detection=2000,
        attack_rate_scale=1.5,
        seed=23,
        include_sensor_variant=True,
    )

    kdd_rows = {row["detector"]: row for row in report.rows
                if row["workload"] == "kddcup99-sim"}
    spot = kdd_rows["SPOT"]
    full_space = kdd_rows["full-space-grid"]
    assert spot["recall"] > full_space["recall"]
    assert spot["recall"] >= 0.3
    assert spot["false_alarm_rate"] <= 0.2
    assert spot["auc"] > 0.7

    sensor_rows = [row for row in report.rows if row["workload"].startswith("sensors")]
    assert sensor_rows, "the sensor variant must be part of the E2 report"
