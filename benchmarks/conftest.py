"""Shared helpers for the benchmark harness.

Every benchmark file regenerates one experiment of the DESIGN.md index
(Section 5).  The pattern is the same everywhere:

* the experiment function is executed exactly once under pytest-benchmark
  (``rounds=1`` — these are minutes-long end-to-end runs, not microbenchmarks);
* the resulting rows — the reproduction of the paper's reported table/figure
  series — are printed so ``pytest benchmarks/ --benchmark-only -s`` shows
  them, and the qualitative shape the paper claims is asserted.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from typing import Callable

import pytest

from repro.eval import ExperimentReport, format_table


def run_experiment_once(benchmark, experiment: Callable[..., ExperimentReport],
                        **kwargs) -> ExperimentReport:
    """Execute one experiment under pytest-benchmark and print its rows."""
    report = benchmark.pedantic(lambda: experiment(**kwargs),
                                rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(f"[{report.experiment_id}] {report.title}")
    print(format_table(list(report.rows), columns=report.column_names()))
    if report.notes:
        print(f"Notes: {report.notes}")
    return report


@pytest.fixture()
def experiment_runner(benchmark):
    """Fixture-flavoured wrapper around :func:`run_experiment_once`."""

    def runner(experiment, **kwargs):
        return run_experiment_once(benchmark, experiment, **kwargs)

    return runner
