"""Experiment A3 — fidelity of the (omega, epsilon) time model.

The time model's promise: the decayed summaries behave like a sliding window
of size omega up to an approximation factor epsilon, without storing the
window.  The benchmark fills one region of the space for omega arrivals, then
sends omega arrivals elsewhere; an exact window of size omega would then hold
nothing of the first phase, so whatever mass the decayed summaries still
credit to the stale region, relative to its peak, is the approximation error.

Expected shape: the residual fraction is below epsilon for every
(omega, epsilon) combination, and decreases as epsilon is tightened.
"""

from repro.eval.experiments import experiment_a3_time_model


def test_bench_a3_time_model(experiment_runner):
    report = experiment_runner(
        experiment_a3_time_model,
        omegas=(200, 500, 1000),
        epsilons=(0.01, 0.1),
        dimensions=4,
        seed=41,
    )

    assert len(report.rows) == 6
    for row in report.rows:
        assert row["bound_satisfied"]
        assert row["residual_fraction"] <= row["epsilon"] + 1e-9

    # Tightening epsilon at fixed omega must shrink the residual.
    for omega in (200, 500, 1000):
        tight = next(r for r in report.rows
                     if r["omega"] == omega and r["epsilon"] == 0.01)
        loose = next(r for r in report.rows
                     if r["omega"] == omega and r["epsilon"] == 0.1)
        assert tight["residual_fraction"] <= loose["residual_fraction"]
