"""Benchmark R1 — fault tolerance under a seeded chaos plan.

The robustness acceptance criterion, run as a benchmark so the committed
``BENCH_chaos.json`` (regenerated with ``python -m repro.cli bench chaos``)
tracks the cost of fault tolerance across PRs.  Three runs of the same
multiplexed workload: a fault-free supervised baseline, a crash-recovery
run (seeded worker kills mid-batch, restored from snapshot + journal
replay), and a stall-plus-deadline run driving the shed path.

The assertions here are the subsystem's contract, not its timings:

* **Loss-free recovery** — after ``n_crashes`` injected worker crashes the
  supervised service still delivers every point, with decisions and final
  per-shard SSTs identical to the fault-free baseline.
* **Deadline shedding is surgical** — shed points never touch detector
  state, so the scored survivors match reference clones fed exactly the
  surviving subsequence of each shard.

Shed *counts* are timing-dependent (they say how much traffic aged past
the deadline behind the stall), so the test asserts shedding happened and
the accounting is consistent, never an exact count.

Sizes are trimmed relative to the CLI defaults so the tier-1 run stays fast.
"""

from repro.eval.experiments import experiment_r1_chaos


def test_bench_r1_chaos(experiment_runner):
    report = experiment_runner(
        experiment_r1_chaos,
        n_tenants=4,
        dimensions=8,
        n_detection_per_tenant=250,
        n_shards=2,
        n_crashes=2,
        stall_ms=60.0,
        deadline_ms=25.0,
    )
    rows = {row["variant"]: row for row in report.rows}
    n_points = rows["fault-free-supervised"]["points"]

    baseline = rows["fault-free-supervised"]
    assert baseline["restarts"] == 0
    assert baseline["shed_points"] == 0

    crash = rows["crash-recovery"]
    # The faults actually fired and the supervisor actually recovered.
    assert len(crash["crash_points"]) == 2
    assert crash["restarts"] >= 1
    assert crash["recovery_ms"] > 0.0
    # The headline property: recovery is loss-free and decision-identical.
    assert crash["decisions_match"] is True
    assert crash["ssts_match"] is True
    assert crash["shed_points"] == 0
    assert crash["quarantined_points"] == 0

    shed = rows["stall-deadline-shed"]
    # The 60ms stalls must age queued points past the 25ms deadline...
    assert shed["shed_points"] >= 1
    # ...every point is still accounted for (scored or shed, never lost)...
    assert shed["scored_points"] + shed["shed_points"] == n_points
    # ...and the survivors' decisions match the clean reference clones.
    assert shed["survivors_match_reference"] is True
