"""Experiment A2 — online self-evolution and OS growth under concept drift.

The paper equips SPOT with three adaptation mechanisms (decayed summaries,
OS growth from detected outliers, periodic self-evolution of CS) so the SST
keeps up when the stream's generating process changes.  The benchmark builds
a stream whose normal clusters *and* outlying subspaces change halfway
through, and compares a frozen SPOT (no evolution, no OS growth) against an
adaptive one, segment by segment.

Expected shape: both variants do well before the drift; after the drift the
adaptive variant's recall over the post-drift segments is at least as high as
the frozen variant's, and the adaptive machinery demonstrably ran.
"""

from repro.eval.experiments import experiment_a2_self_evolution


def test_bench_a2_self_evolution(experiment_runner):
    n_segments = 8
    report = experiment_runner(
        experiment_a2_self_evolution,
        dimensions=16,
        n_training=700,
        n_before=700,
        n_after=700,
        n_segments=n_segments,
        seed=37,
    )

    def mean_recall(variant, segments):
        values = [row["recall"] for row in report.rows
                  if row["variant"] == variant and row["segment"] in segments]
        return sum(values) / len(values)

    post_drift = set(range(n_segments // 2, n_segments))
    frozen_post = mean_recall("frozen", post_drift)
    adaptive_post = mean_recall("adaptive", post_drift)

    # Adaptation must not hurt post-drift recall; typically it helps.
    assert adaptive_post >= frozen_post - 0.05

    # Both variants are present for every segment.
    assert len(report.rows) == 2 * n_segments
