"""Experiment E1 — effectiveness on synthetic high-dimensional streams.

The paper's central comparative claim: SPOT detects projected outliers that
full-space stream detectors miss.  The benchmark runs SPOT, a full-space
decayed-grid detector, a sliding-window kNN detector, a random-subspace
control and a sparsity-coefficient batch detector on Gaussian-mixture streams
with planted combination outliers, at two dimensionalities, and reports
precision / recall / F1 / false-alarm rate / AUC / throughput per detector.

Expected shape: SPOT's recall and F1 dominate the full-space grid detector
(whose recall collapses to ~0) and the sparsity-coefficient detector (whose
false-alarm rate explodes); the random-subspace control trails SPOT at equal
subspace budget; the kNN detector degrades as dimensionality grows while SPOT
does not.
"""

from repro.eval.experiments import experiment_e1_effectiveness_synthetic


def test_bench_e1_effectiveness_synthetic(experiment_runner):
    report = experiment_runner(
        experiment_e1_effectiveness_synthetic,
        dimension_settings=(20, 40),
        n_training=700,
        n_detection=1200,
        outlier_rate=0.03,
        seed=11,
    )

    rows = {(row["detector"], row["dimensions"]): row for row in report.rows}
    for dimensions in (20, 40):
        spot = rows[("SPOT", dimensions)]
        full_space = rows[("full-space-grid", dimensions)]
        assert spot["recall"] > full_space["recall"]
        assert spot["f1"] > full_space["f1"]
        assert spot["auc"] >= 0.75
        # SPOT reports the subspaces it blames; full-space methods cannot.
        assert "subspace_recovery" in spot
